// Package dataflow is the analysis engine underneath the
// interprocedural memlint analyzers (atomiccross, ctxflow, unitflow,
// errdropip; DESIGN.md §14): a basic-block control-flow graph built
// from syntax, a generic forward worklist solver over lattice facts, a
// deterministic variable environment, and a module-wide call-graph
// approximation from type-checked call sites. Everything is standard
// library only, riding the go/types information the loader
// (internal/lint/loader) already produces.
//
// The engine is deliberately a conservative approximation, not an SSA
// construction: blocks carry the original ast.Node sequence in
// execution order, and analyzers supply transfer functions over those
// nodes. That keeps analyzers close to the syntax they report on while
// the CFG supplies the path structure (branch joins, loops) that the
// purely syntactic PR 3 analyzers could not see.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal sequence of nodes that execute
// in order, ending where control may transfer. Nodes holds statements
// and the control expressions that are evaluated inside the block (an
// if condition, a range operand), in evaluation order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is
// the entry and Blocks[1] the exit; every return, panic, and the
// implicit fall-off-the-end edge lead to the exit. Blocks unreachable
// from the entry (code after return, break targets never broken to)
// stay in the slice with no predecessors, which the solver treats as
// unreachable (bottom facts).
type CFG struct {
	Blocks []*Block
}

// Entry is the block control enters the function through.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Exit is the block every terminating path leads to.
func (c *CFG) Exit() *Block { return c.Blocks[1] }

// New builds the CFG of a function body. A nil body (declarations
// without bodies) yields a two-block graph with entry wired to exit.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	entry := b.newBlock()
	b.exit = b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmts(body.List)
	}
	b.edge(b.cur, b.exit)
	return b.cfg
}

// String renders the graph structure for tests and debugging: one
// line per block with its successor indices and node summary.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%T]", n)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// builder holds the under-construction graph and the targets that
// break, continue and goto resolve against.
type builder struct {
	cfg  *CFG
	cur  *Block
	exit *Block

	// loops and switches stack for break/continue resolution; the
	// innermost entry with a matching (or empty) label wins.
	targets []target
	// labelBlocks maps a label name to the block a goto jumps to.
	labelBlocks map[string]*Block
	// pendingLabel is the label of the LabeledStmt currently being
	// built, claimed by the next loop or switch for labeled break.
	pendingLabel string
	// fallthroughTo is the next case clause's block while building a
	// switch clause body.
	fallthroughTo *Block
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// dead replaces the current block after a jump: subsequent statements
// are unreachable but still get a (predecessor-less) home so analyzers
// can skip them uniformly.
func (b *builder) dead() {
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue: the innermost target matching
// label (or any, for an unlabeled branch). wantContinue restricts to
// loops.
func (b *builder) findTarget(label string, wantContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if wantContinue {
			if t.continueTo != nil {
				return t.continueTo
			}
			continue
		}
		return t.breakTo
	}
	return b.exit // malformed input; degrade to "leaves the function"
}

func (b *builder) labelBlock(name string) *Block {
	if b.labelBlocks == nil {
		b.labelBlocks = make(map[string]*Block)
	}
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labelBlocks[name] = blk
	return blk
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(head, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			b.edge(head, els)
		} else {
			b.edge(head, after)
		}
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if els != nil {
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		b.targets = append(b.targets, target{label: label, breakTo: after, continueTo: continueTo})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, continueTo)
		b.targets = b.targets[:len(b.targets)-1]
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		// The range statement itself sits in the head so transfer
		// functions see the Key/Value (re)definitions once per entry.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.targets = append(b.targets, target{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var bodyList []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			if s.Init != nil {
				b.stmt(s.Init)
			}
			b.add(s.Tag)
			bodyList = s.Body.List
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				b.stmt(s.Init)
			}
			b.add(s.Assign)
			bodyList = s.Body.List
		}
		head := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, target{label: label, breakTo: after})
		clauses := make([]*Block, len(bodyList))
		for i := range bodyList {
			clauses[i] = b.newBlock()
		}
		hasDefault := false
		for i, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			b.edge(head, clauses[i])
			b.cur = clauses[i]
			for _, e := range cc.List {
				b.add(e)
			}
			prev := b.fallthroughTo
			if i+1 < len(clauses) {
				b.fallthroughTo = clauses[i+1]
			} else {
				b.fallthroughTo = after
			}
			b.stmts(cc.Body)
			b.fallthroughTo = prev
			b.edge(b.cur, after)
		}
		if !hasDefault {
			b.edge(head, after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, target{label: label, breakTo: after})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.exit)
		b.dead()

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.findTarget(label, false))
			b.dead()
		case token.CONTINUE:
			b.edge(b.cur, b.findTarget(label, true))
			b.dead()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(label))
			b.dead()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
			b.dead()
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.edge(b.cur, b.exit)
			b.dead()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt,
		// GoStmt: straight-line nodes.
		b.add(s)
	}
}

// isPanic reports whether e is a call to the panic builtin, which
// terminates the path. (Calls to os.Exit and log.Fatal are left as
// ordinary nodes: treating them as terminators needs type info the
// builder deliberately does not require.)
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
