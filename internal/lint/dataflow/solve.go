package dataflow

import "go/ast"

// Fact is an analyzer-defined lattice element. nil is bottom: the
// fact of unreachable code. The solver never calls Join, Transfer or
// Equal with a nil fact.
type Fact any

// Flow packages an analyzer's lattice operations for the forward
// solver.
type Flow struct {
	// Join combines the facts of two predecessors at a merge point.
	// It must be commutative, associative and idempotent, and must
	// not mutate its arguments.
	Join func(a, b Fact) Fact
	// Transfer applies one block node's effect. It may return its
	// input unchanged when the node has no effect; when it has one,
	// it must return a fresh fact rather than mutating in.
	Transfer func(n ast.Node, in Fact) Fact
	// Equal detects the fixpoint.
	Equal func(a, b Fact) bool
}

// Forward computes the entry fact of every block by iterating the
// transfer functions to a fixpoint. init is the fact at function
// entry. The returned slice is indexed by Block.Index; unreachable
// blocks keep a nil (bottom) fact.
//
// The iteration order is the deterministic block-index order repeated
// until stable, so two runs over the same syntax produce identical
// facts (and therefore identical diagnostics) regardless of map or
// scheduling noise in the host process.
func (c *CFG) Forward(init Fact, fl Flow) []Fact {
	in := make([]Fact, len(c.Blocks))
	in[0] = init
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			fact := in[blk.Index]
			if fact == nil {
				continue
			}
			out := c.transferBlock(blk, fact, fl)
			for _, succ := range blk.Succs {
				merged := out
				if prev := in[succ.Index]; prev != nil {
					merged = fl.Join(prev, out)
					if fl.Equal(prev, merged) {
						continue
					}
				}
				in[succ.Index] = merged
				changed = true
			}
		}
	}
	return in
}

func (c *CFG) transferBlock(blk *Block, fact Fact, fl Flow) Fact {
	for _, n := range blk.Nodes {
		fact = fl.Transfer(n, fact)
	}
	return fact
}

// Visit replays the solved facts through every reachable block in
// index order, calling visit with each node and the fact holding
// immediately before it. Analyzers report diagnostics from visit,
// with the solver's facts describing what is known on entry to the
// node across all paths.
func (c *CFG) Visit(in []Fact, fl Flow, visit func(n ast.Node, before Fact)) {
	for _, blk := range c.Blocks {
		fact := in[blk.Index]
		if fact == nil {
			continue
		}
		for _, n := range blk.Nodes {
			visit(n, fact)
			fact = fl.Transfer(n, fact)
		}
	}
}
