package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"memsim/internal/lint/analysis"
)

// EdgeKind classifies how control reaches a callee.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary (possibly variadic) static call.
	EdgeCall EdgeKind = iota
	// EdgeGo is the direct call of a go statement: the callee runs on
	// a fresh goroutine.
	EdgeGo
	// EdgeDefer is the direct call of a defer statement.
	EdgeDefer
	// EdgeCallback marks a function value passed as an argument to a
	// module function: the edge runs from the receiving function to
	// the value, since the receiver is the likely invoker (a store
	// mutator calling its update closure under the store lock, a
	// registry holding a gauge reader).
	EdgeCallback
	// EdgeRef is a bare function reference — a method value, a
	// handler stored in a struct — whose invoker is unknown; the
	// enclosing function is charged with it conservatively.
	EdgeRef
)

// Edge is one resolved call or reference.
type Edge struct {
	Site ast.Node // the CallExpr or referencing expression
	Kind EdgeKind
	// Callee is the target's node when it is a module function with a
	// body; nil for standard-library and bodyless targets.
	Callee *Node
	// Fn is the type-checked callee object when static resolution
	// succeeded (set even when Callee is nil); nil for dynamic calls.
	Fn *types.Func
}

// Node is one function in the graph: a declared function or method,
// or a function literal (attributed to its lexical parent).
type Node struct {
	Index int
	// Func is the declared object; nil for function literals.
	Func *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *analysis.Package
	// Parent is the enclosing function for literals; nil for
	// declarations.
	Parent *Node
	// Out holds edges leaving this node, in source order; In the
	// reverse view, in graph construction order.
	Out []*Edge
	In  []*Edge
	// InFrom[i] is the node owning In[i].
	InFrom []*Node
	// GoRoot marks a goroutine entry point: the target of a go
	// statement, a handler registered on the net/http surface, or a
	// ServeHTTP method.
	GoRoot bool
	// Locks reports that the body contains a sync.(RW)Mutex
	// Lock/RLock call, the heuristic the atomiccross analyzer uses
	// for "this function takes a lock before touching shared state".
	Locks bool
}

// Body returns the function body, nil for bodyless declarations.
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the start of the declaration or literal, covering the
// signature (parameters included) as well as the body.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// String names the node for diagnostics and tests.
func (n *Node) String() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	if n.Parent != nil {
		return n.Parent.String() + "$lit"
	}
	return "$lit"
}

// Graph is the module-wide call-graph approximation, built from
// type-checked call sites: static calls resolve exactly, interface
// method calls fan out to every module method that implements them,
// and function values become callback or reference edges. Dynamic
// calls through non-interface function values are the approximation's
// blind spot and are simply absent.
type Graph struct {
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  *ast.FuncLit // placeholder to keep struct layout obvious
	lits   map[*ast.FuncLit]*Node

	goReach []bool // lazily computed goroutine reachability
}

// FuncNode returns the node of a declared function, or nil.
func (g *Graph) FuncNode(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.lits[lit] }

// ModuleGraph returns the module's call graph, built once per Module
// and shared by every analyzer through the module fact cache.
func ModuleGraph(m *analysis.Module) *Graph {
	v, _ := m.Fact("dataflow.callgraph", func() (any, error) {
		return Build(m.Packages), nil
	})
	return v.(*Graph)
}

// Build constructs the graph over the given packages (the loader's
// deterministic order). Only functions with bodies in pkgs become
// nodes; _test.go files never reach the builder because the loader's
// go list GoFiles excludes them.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byFunc: make(map[*types.Func]*Node),
		lits:   make(map[*ast.FuncLit]*Node),
	}
	b := &graphBuilder{g: g}

	// Phase 1: a node per declared function, so cross-package edges
	// resolve regardless of package order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := b.newNode()
				n.Func = fn
				n.Decl = fd
				n.Pkg = pkg
				g.byFunc[fn] = n
				if isServeHTTP(fn) {
					n.GoRoot = true
				}
			}
		}
	}
	b.indexMethods()

	// Phase 2: walk bodies, creating literal nodes and edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if n := g.byFunc[fn]; n != nil {
					b.walk(n, fd.Body)
				}
			}
		}
	}

	// Reverse view, in deterministic node/edge order.
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Callee != nil {
				e.Callee.In = append(e.Callee.In, e)
				e.Callee.InFrom = append(e.Callee.InFrom, n)
			}
		}
	}
	return g
}

// GoReachable reports, per node index, whether the node is reachable
// from any goroutine entry point through calls, callbacks and
// references — the "may run off the spawning thread" set.
func (g *Graph) GoReachable() []bool {
	if g.goReach != nil {
		return g.goReach
	}
	reach := make([]bool, len(g.Nodes))
	var stack []*Node
	for _, n := range g.Nodes {
		if n.GoRoot {
			reach[n.Index] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e.Callee != nil && !reach[e.Callee.Index] {
				reach[e.Callee.Index] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	g.goReach = reach
	return reach
}

// graphBuilder carries the per-build indexes.
type graphBuilder struct {
	g *Graph
	// methodsByName fans interface method calls out to module
	// implementations.
	methodsByName map[string][]*Node
}

func (b *graphBuilder) newNode() *Node {
	n := &Node{Index: len(b.g.Nodes)}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *graphBuilder) indexMethods() {
	b.methodsByName = make(map[string][]*Node)
	for _, n := range b.g.Nodes {
		if n.Func != nil && n.Func.Type().(*types.Signature).Recv() != nil {
			b.methodsByName[n.Func.Name()] = append(b.methodsByName[n.Func.Name()], n)
		}
	}
}

// walk visits one function body (not descending into literals, which
// recurse through their own walk with a child node).
func (b *graphBuilder) walk(n *Node, body *ast.BlockStmt) {
	info := n.Pkg.TypesInfo
	// funPos marks expressions appearing as the Fun of a call, so the
	// reference pass below can tell call position from value position.
	funPos := make(map[ast.Expr]bool)
	// callKind upgrades direct go/defer calls.
	callKind := make(map[*ast.CallExpr]EdgeKind)
	// litRole records how a literal is introduced (callback target or
	// goroutine root) before its node exists.
	litRole := make(map[*ast.FuncLit]litIntro)

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := b.newNode()
			child.Lit = x
			child.Pkg = n.Pkg
			child.Parent = n
			b.g.lits[x] = child
			role := litRole[x]
			if role.goRoot {
				child.GoRoot = true
			}
			from := n
			kind := EdgeRef
			switch {
			case role.kind != 0 || role.direct:
				kind = role.kind
				if role.from != nil {
					from = role.from
				}
			}
			from.Out = append(from.Out, &Edge{Site: x, Kind: kind, Callee: child})
			b.walk(child, x.Body)
			return false

		case *ast.GoStmt:
			callKind[x.Call] = EdgeGo
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				litRole[lit] = litIntro{direct: true, kind: EdgeGo, goRoot: true}
			}
			return true

		case *ast.DeferStmt:
			callKind[x.Call] = EdgeDefer
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				litRole[lit] = litIntro{direct: true, kind: EdgeDefer}
			}
			return true

		case *ast.CallExpr:
			b.call(n, info, x, callKind[x], funPos, litRole)
			return true

		case *ast.Ident:
			if funPos[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				b.ref(n, x, fn)
			}
			return true

		case *ast.SelectorExpr:
			if funPos[x] {
				// Still descend: the receiver expression may itself
				// reference functions.
				return true
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				b.ref(n, x, fn)
				// The Sel ident would double-report; descend into X only.
				ast.Inspect(x.X, func(y ast.Node) bool {
					if c, ok := y.(*ast.CallExpr); ok {
						b.call(n, info, c, callKind[c], funPos, litRole)
					}
					return true
				})
				return false
			}
			return true
		}
		return true
	})
	_ = funPos
}

// litIntro records how a function literal was introduced.
type litIntro struct {
	direct bool     // directly called (go f(), defer f(), f()())
	kind   EdgeKind // edge kind for the introducing edge
	from   *Node    // edge source when not the enclosing function
	goRoot bool
}

// call records the edges of one call expression: the callee edge plus
// classification of any function-valued arguments.
func (b *graphBuilder) call(n *Node, info *types.Info, call *ast.CallExpr, kind EdgeKind, funPos map[ast.Expr]bool, litRole map[*ast.FuncLit]litIntro) {
	fun := ast.Unparen(call.Fun)
	funPos[fun] = true
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		funPos[sel.Sel] = true
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: mark so the literal pass adds a
		// call edge rather than a bare reference.
		if _, seen := litRole[lit]; !seen {
			litRole[lit] = litIntro{direct: true, kind: EdgeCall}
		}
	}

	// A conversion, not a call: T(f). Function-typed conversions keep
	// the operand's reference semantics (handled by the reference
	// pass); there is no callee.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	callee := b.staticCallee(info, fun)
	if callee != nil {
		if isMutexLock(callee) {
			n.Locks = true
		}
		edgeKind := kind
		if edgeKind == 0 {
			edgeKind = EdgeCall
		}
		target := b.g.byFunc[callee]
		if target == nil && isInterfaceMethod(callee) {
			// Fan an interface call out to module implementations.
			for _, impl := range b.implementations(callee) {
				n.Out = append(n.Out, &Edge{Site: call, Kind: edgeKind, Callee: impl, Fn: impl.Func})
			}
			b.classifyFuncArgs(n, info, call, callee, litRole)
			return
		}
		n.Out = append(n.Out, &Edge{Site: call, Kind: edgeKind, Callee: target, Fn: callee})
		if target != nil && kind == EdgeGo {
			target.GoRoot = true
		}
	}
	b.classifyFuncArgs(n, info, call, callee, litRole)
}

// classifyFuncArgs decides what a function value handed to a call
// means: registered on the net/http surface it becomes a goroutine
// root; handed to a module function it becomes that function's
// callback; handed to anything else it is assumed to be invoked
// synchronously by the enclosing function.
func (b *graphBuilder) classifyFuncArgs(n *Node, info *types.Info, call *ast.CallExpr, callee *types.Func, litRole map[*ast.FuncLit]litIntro) {
	spawns := callee != nil && spawnsGoroutine(callee)
	var calleeNode *Node
	if callee != nil {
		calleeNode = b.g.byFunc[callee]
	}
	for _, arg := range call.Args {
		lit, fn, site := funcValue(info, arg)
		switch {
		case lit != nil:
			switch {
			case spawns:
				litRole[lit] = litIntro{direct: true, kind: EdgeGo, goRoot: true}
			case calleeNode != nil:
				litRole[lit] = litIntro{direct: true, kind: EdgeCallback, from: calleeNode}
			default:
				litRole[lit] = litIntro{direct: true, kind: EdgeCall}
			}
		case fn != nil:
			target := b.g.byFunc[fn]
			if target == nil {
				continue
			}
			switch {
			case spawns:
				target.GoRoot = true
			case calleeNode != nil:
				calleeNode.Out = append(calleeNode.Out, &Edge{Site: site, Kind: EdgeCallback, Callee: target, Fn: fn})
			default:
				n.Out = append(n.Out, &Edge{Site: site, Kind: EdgeCall, Callee: target, Fn: fn})
			}
		}
	}
}

// ref records a bare function reference (method value, stored
// handler) against the enclosing function.
func (b *graphBuilder) ref(n *Node, site ast.Node, fn *types.Func) {
	target := b.g.byFunc[fn]
	if target == nil {
		return
	}
	n.Out = append(n.Out, &Edge{Site: site, Kind: EdgeRef, Callee: target, Fn: fn})
}

// staticCallee resolves the called object for a call through an
// identifier or selector.
func (b *graphBuilder) staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// implementations returns the module methods that may satisfy an
// interface method call: same name, receiver type implements the
// interface.
func (b *graphBuilder) implementations(m *types.Func) []*Node {
	iface := interfaceOf(m)
	if iface == nil {
		return nil
	}
	var out []*Node
	for _, cand := range b.methodsByName[m.Name()] {
		recv := cand.Func.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// interfaceOf returns the interface a method object belongs to, nil
// for concrete methods.
func interfaceOf(m *types.Func) *types.Interface {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

func isInterfaceMethod(m *types.Func) bool { return interfaceOf(m) != nil }

// funcValue unwraps an argument to a function literal or a statically
// known function reference, looking through parentheses and
// function-typed conversions (http.HandlerFunc(h)).
func funcValue(info *types.Info, arg ast.Expr) (*ast.FuncLit, *types.Func, ast.Expr) {
	arg = ast.Unparen(arg)
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return funcValue(info, call.Args[0])
			}
		}
	}
	switch arg := arg.(type) {
	case *ast.FuncLit:
		return arg, nil, arg
	case *ast.Ident:
		if fn, ok := info.Uses[arg].(*types.Func); ok {
			return nil, fn, arg
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
			return nil, fn, arg
		}
	}
	return nil, nil, nil
}

// isMutexLock matches sync.Mutex.Lock / sync.RWMutex.Lock / RLock.
func isMutexLock(fn *types.Func) bool {
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Name() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// spawnsGoroutine reports callees that run their function arguments
// on another goroutine: the net/http registration surface (handlers
// run per-request on server goroutines) and time.AfterFunc.
func spawnsGoroutine(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Name() {
	case "http":
		switch fn.Name() {
		case "Handle", "HandleFunc", "Serve", "ListenAndServe", "ListenAndServeTLS":
			return true
		}
	case "time":
		return fn.Name() == "AfterFunc"
	}
	return false
}

// isServeHTTP matches the http.Handler method shape by name and
// arity, so implementing the interface marks the method a goroutine
// entry even when the registration happens outside the module.
func isServeHTTP(fn *types.Func) bool {
	if fn.Name() != "ServeHTTP" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 2
}
