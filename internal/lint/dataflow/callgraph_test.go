package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"memsim/internal/lint/analysis"
	"memsim/internal/lint/dataflow"
)

// checkPkg type-checks one import-free source file into an
// analysis.Package, the smallest input Build accepts.
func checkPkg(t testing.TB, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return &analysis.Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

// node finds a declared function's node by name.
func node(t *testing.T, g *dataflow.Graph, name string) *dataflow.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Func != nil && n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

// hasEdge reports whether from has an out-edge of kind to a callee
// whose resolved function is named callee.
func hasEdge(from *dataflow.Node, kind dataflow.EdgeKind, callee string) bool {
	for _, e := range from.Out {
		if e.Kind != kind || e.Callee == nil {
			continue
		}
		if e.Callee.Func != nil && e.Callee.Func.Name() == callee {
			return true
		}
	}
	return false
}

// TestMethodValue checks both readings of a method value: handed to a
// module function it becomes that function's callback; merely stored
// it is a bare reference from the storer.
func TestMethodValue(t *testing.T) {
	g := dataflow.Build([]*analysis.Package{checkPkg(t, `package p
type T struct{}

func (t T) M() {}

func run(f func()) { f() }

func use(t T) {
	run(t.M)
	h := t.M
	_ = h
}
`)})
	if !hasEdge(node(t, g, "run"), dataflow.EdgeCallback, "M") {
		t.Error("run(t.M): want Callback edge run -> M")
	}
	if !hasEdge(node(t, g, "use"), dataflow.EdgeRef, "M") {
		t.Error("h := t.M: want Ref edge use -> M")
	}
	if !hasEdge(node(t, g, "use"), dataflow.EdgeCall, "run") {
		t.Error("run(...): want Call edge use -> run")
	}
}

// TestDeferredClosure checks that a deferred literal hangs off its
// encloser with a Defer edge and that calls inside it still resolve.
func TestDeferredClosure(t *testing.T) {
	g := dataflow.Build([]*analysis.Package{checkPkg(t, `package p
func helper() {}

func d() {
	defer func() { helper() }()
}
`)})
	d := node(t, g, "d")
	var lit *dataflow.Node
	for _, e := range d.Out {
		if e.Kind == dataflow.EdgeDefer && e.Callee != nil && e.Callee.Lit != nil {
			lit = e.Callee
		}
	}
	if lit == nil {
		t.Fatal("want Defer edge d -> closure")
	}
	if lit.Parent != d {
		t.Error("closure's Parent is not d")
	}
	if !hasEdge(lit, dataflow.EdgeCall, "helper") {
		t.Error("want Call edge closure -> helper")
	}
}

// TestVariadicCall checks every function value in a variadic argument
// list becomes a callback of the callee.
func TestVariadicCall(t *testing.T) {
	g := dataflow.Build([]*analysis.Package{checkPkg(t, `package p
func v(fs ...func()) {
	for _, f := range fs {
		f()
	}
}

func a() {}
func b() {}

func use() { v(a, b) }
`)})
	v := node(t, g, "v")
	if !hasEdge(v, dataflow.EdgeCallback, "a") || !hasEdge(v, dataflow.EdgeCallback, "b") {
		t.Error("v(a, b): want Callback edges v -> a and v -> b")
	}
}

// TestGoReachable checks goroutine roots and transitive reachability:
// the spawned function and everything it calls are reachable, the
// spawner is not.
func TestGoReachable(t *testing.T) {
	g := dataflow.Build([]*analysis.Package{checkPkg(t, `package p
func spawn() { go worker() }

func worker() { leaf() }

func leaf() {}
`)})
	worker := node(t, g, "worker")
	if !worker.GoRoot {
		t.Error("go worker(): worker not marked GoRoot")
	}
	reach := g.GoReachable()
	if !reach[worker.Index] || !reach[node(t, g, "leaf").Index] {
		t.Error("worker and leaf should be goroutine-reachable")
	}
	if reach[node(t, g, "spawn").Index] {
		t.Error("spawn itself should not be goroutine-reachable")
	}
}

// TestInterfaceFanOut checks an interface method call resolves to the
// module implementations of that method.
func TestInterfaceFanOut(t *testing.T) {
	g := dataflow.Build([]*analysis.Package{checkPkg(t, `package p
type I interface{ M() }

type T struct{}

func (T) M() {}

type U struct{}

func (*U) M() {}

func callIface(i I) { i.M() }
`)})
	ci := node(t, g, "callIface")
	count := 0
	for _, e := range ci.Out {
		if e.Kind == dataflow.EdgeCall && e.Callee != nil && e.Callee.Func != nil && e.Callee.Func.Name() == "M" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("i.M(): fanned out to %d implementations, want 2 (T and *U)", count)
	}
}
