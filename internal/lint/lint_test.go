package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"memsim/internal/lint"
	"memsim/internal/lint/analysis"
)

// parse builds an analysis.Package from an in-memory source file. The
// directive and lintdirective plumbing only needs syntax, so a bare
// types.Package stands in for full type information.
func parse(t *testing.T, src string) (*token.FileSet, *analysis.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture source: %v", err)
	}
	return fset, &analysis.Package{
		PkgPath:   "d",
		Fset:      fset,
		Files:     []*ast.File{f},
		Types:     types.NewPackage("d", "d"),
		TypesInfo: &types.Info{},
	}
}

// probe reports every short variable declaration, giving the
// suppression tests a predictable diagnostic to aim directives at.
var probe = &analysis.Analyzer{
	Name: "probe",
	Doc:  "test probe: report every := statement",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					pass.Reportf(as.Pos(), "short variable declaration")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuite(t *testing.T) {
	want := []string{
		"simdeterminism", "eventtime", "errdrop", "statreg",
		"atomiccross", "ctxflow", "unitflow", "errdropip",
		"lintdirective",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	const src = `package d

func f() int {
	a := 1
	//lint:ignore probe testing the own-line placement
	b := 2
	c := 3 //lint:ignore probe testing the trailing placement
	//lint:ignore eventtime directive for a different analyzer
	d := 4
	//lint:ignore all testing the wildcard
	e := 5
	return a + b + c + d + e
}
`
	fset, pkg := parse(t, src)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	// a := 1 (line 4) has no directive; d := 4 (line 9) is covered only
	// by a directive naming a different analyzer. b, c, and e are
	// suppressed.
	if len(lines) != 2 || lines[0] != 4 || lines[1] != 9 {
		t.Fatalf("diagnostics on lines %v, want [4 9]; diags: %v", lines, diags)
	}
}

func TestBareDirectiveIsFlagged(t *testing.T) {
	const src = `package d

//lint:ignore probe a well-formed directive on a declaration
var a = 1

//lint:ignore probe
var b = 2

//lint:ignore
var c = 3

//lint:ignored directives with a mangled prefix are also malformed
var d = 4
`
	fset, pkg := parse(t, src)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.Lintdirective})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var lines []int
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed //lint:ignore directive") {
			t.Errorf("unexpected message %q", d.Message)
		}
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	// The directive missing its reason (line 6), the empty directive
	// (line 9), and the mangled prefix (line 12) are flagged; the
	// well-formed one (line 3) is not.
	if len(lines) != 3 || lines[0] != 6 || lines[1] != 9 || lines[2] != 12 {
		t.Fatalf("malformed-directive diagnostics on lines %v, want [6 9 12]", lines)
	}
}

func TestUnusedDirectiveAudit(t *testing.T) {
	const src = `package d

//lint:ignore probe this one suppresses the := below
var used = func() int { a := 1; return a }()

//lint:ignore probe nothing on this line produces a diagnostic
var unused = 2

//lint:ignore notrun analyzers outside this run cannot be judged
var other = 3

//lint:ignore lintdirective the unused suppression below is deliberate
//lint:ignore probe kept deliberately
var kept = 4
`
	fset, pkg := parse(t, src)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{probe, analysis.Lintdirective})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var lines []int
	for _, d := range diags {
		if !strings.Contains(d.Message, "unused //lint:ignore directive") {
			t.Errorf("unexpected message %q", d.Message)
		}
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	// Only the directive on line 6 is flagged: line 3 suppressed a real
	// probe diagnostic, line 9 names an analyzer that did not run, and
	// line 13's audit finding is itself suppressed by line 12 — which
	// makes line 12 used (the two-round rule).
	if len(lines) != 1 || lines[0] != 6 {
		t.Fatalf("unused-directive diagnostics on lines %v, want [6]; diags: %v", lines, diags)
	}
}

func TestMalformedDirectiveSuppressesNothing(t *testing.T) {
	const src = `package d

func f() int {
	//lint:ignore probe
	a := 1
	return a
}
`
	_, pkg := parse(t, src)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: a directive without a reason must not suppress", len(diags))
	}
}
