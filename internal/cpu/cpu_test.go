package cpu

import (
	"testing"

	"memsim/internal/sim"
	"memsim/internal/trace"
)

var testClock = sim.NewClock(1.6e9)

func cfg(maxInstrs uint64) Config {
	return Config{Width: 4, ROBSize: 64, StoreBuffer: 64, Clock: testClock, MaxInstrs: maxInstrs}
}

// fixedMemory answers every access synchronously after a fixed latency.
type fixedMemory struct {
	sched   *sim.Scheduler
	latency sim.Time
	count   int
}

func (m *fixedMemory) Access(addr uint64, kind trace.Kind, complete func(sim.Time)) Reply {
	m.count++
	return Reply{Accepted: true, Done: true, At: m.sched.Now() + m.latency}
}

// pendingMemory completes loads via callback after a fixed delay and
// tracks concurrent outstanding accesses.
type pendingMemory struct {
	sched          *sim.Scheduler
	latency        sim.Time
	capacity       int
	outstanding    int
	maxOutstanding int
	onFree         func()
}

func (m *pendingMemory) Access(addr uint64, kind trace.Kind, complete func(sim.Time)) Reply {
	if m.capacity > 0 && m.outstanding >= m.capacity {
		return Reply{}
	}
	m.outstanding++
	if m.outstanding > m.maxOutstanding {
		m.maxOutstanding = m.outstanding
	}
	m.sched.Schedule(m.latency, func() {
		m.outstanding--
		if complete != nil {
			complete(m.sched.Now())
		}
		if m.onFree != nil {
			m.onFree()
		}
	})
	return Reply{Accepted: true}
}

func computeOps(n int) []trace.Op {
	var ops []trace.Op
	for i := 0; i < n; i++ {
		ops = append(ops, trace.Op{NonMem: 19, Addr: uint64(i) * 64, Kind: trace.Load})
	}
	return ops
}

func run(t *testing.T, s *sim.Scheduler, c *CPU) {
	t.Helper()
	s.RunWhile(func() bool { return !c.Done() })
	if !c.Done() {
		t.Fatal("simulation drained without core finishing")
	}
}

func TestPureComputeIPCNearWidth(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(2)}
	c, err := New(s, mem, trace.NewSlice(computeOps(100)), cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, c)
	if c.Stats().Retired != 2000 {
		t.Fatalf("retired = %d, want 2000", c.Stats().Retired)
	}
	ipc := c.IPC()
	if ipc < 3.5 || ipc > 4.0 {
		t.Fatalf("compute IPC = %v, want near width 4", ipc)
	}
}

func TestIPCNeverExceedsWidth(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(1)}
	c, _ := New(s, mem, trace.NewSlice(computeOps(50)), cfg(0))
	run(t, s, c)
	if c.IPC() > 4.0 {
		t.Fatalf("IPC = %v exceeds retire width", c.IPC())
	}
}

func TestMaxInstrsBudget(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(1)}
	gen, err := trace.NewRepeat(computeOps(4))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(s, mem, gen, cfg(1000))
	run(t, s, c)
	if got := c.Stats().Retired; got != 1000 {
		t.Fatalf("retired = %d, want budget 1000", got)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// 8 independent loads with 500ns latency should overlap almost
	// completely; 8 dependent loads serialize to ~4000ns.
	lat := 500 * sim.Nanosecond
	runWith := func(dep bool) (sim.Time, int) {
		s := sim.NewScheduler()
		mem := &pendingMemory{sched: s, latency: lat}
		var ops []trace.Op
		for i := 0; i < 8; i++ {
			ops = append(ops, trace.Op{Addr: uint64(i) * 4096, Kind: trace.Load, DependsOnPrev: dep && i > 0})
		}
		c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
		s.RunWhile(func() bool { return !c.Done() })
		return c.FinishTime(), mem.maxOutstanding
	}
	tPar, mlpPar := runWith(false)
	tSer, mlpSer := runWith(true)
	if tPar >= tSer {
		t.Fatalf("parallel %v not faster than serial %v", tPar, tSer)
	}
	if tSer < 8*lat {
		t.Fatalf("serial chain finished in %v, faster than 8 serialized misses", tSer)
	}
	if tPar > 2*lat {
		t.Fatalf("independent misses took %v, want near one latency %v", tPar, lat)
	}
	if mlpPar < 8 {
		t.Fatalf("parallel MLP = %d, want 8", mlpPar)
	}
	if mlpSer != 1 {
		t.Fatalf("serial MLP = %d, want 1", mlpSer)
	}
}

func TestROBBoundsMLP(t *testing.T) {
	// With a 64-entry window and loads every 8 instructions, at most
	// 64/8 = 8 loads can be outstanding.
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: 2 * sim.Microsecond}
	var ops []trace.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, trace.Op{NonMem: 7, Addr: uint64(i) * 4096, Kind: trace.Load})
	}
	c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
	run(t, s, c)
	if mem.maxOutstanding > 8 {
		t.Fatalf("maxOutstanding = %d, want <= 8 (ROB-bounded)", mem.maxOutstanding)
	}
}

func TestMSHRRejectionStallsAndWakes(t *testing.T) {
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: 100 * sim.Nanosecond, capacity: 2}
	var ops []trace.Op
	for i := 0; i < 16; i++ {
		ops = append(ops, trace.Op{Addr: uint64(i) * 4096, Kind: trace.Load})
	}
	c, err := New(s, mem, trace.NewSlice(ops), cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	mem.onFree = c.Wake
	run(t, s, c)
	if mem.maxOutstanding > 2 {
		t.Fatalf("capacity violated: %d outstanding", mem.maxOutstanding)
	}
	// 16 misses through 2 MSHRs at 100ns: at least 8 serialized rounds.
	if c.FinishTime() < 800*sim.Nanosecond {
		t.Fatalf("finish at %v, too fast for 2-way MSHR limit", c.FinishTime())
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// Stores whose fills take enormous time must not stall the core.
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: sim.Millisecond}
	ops := []trace.Op{
		{NonMem: 3, Addr: 0x1000, Kind: trace.Store},
		{NonMem: 3, Addr: 0x2000, Kind: trace.Store},
		{NonMem: 3, Addr: 0x3000, Kind: trace.Store},
	}
	c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
	run(t, s, c)
	if c.FinishTime() > 100*testClock.Period() {
		t.Fatalf("stores stalled retirement: finish at %v", c.FinishTime())
	}
	if c.Stats().Stores != 3 {
		t.Fatalf("stores = %d", c.Stats().Stores)
	}
}

func TestSoftwarePrefetchNonBlocking(t *testing.T) {
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: sim.Millisecond}
	ops := []trace.Op{
		{Addr: 0x1000, Kind: trace.SWPrefetch},
		{NonMem: 10, Addr: 0x2000, Kind: trace.SWPrefetch},
	}
	c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
	run(t, s, c)
	if c.Stats().Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", c.Stats().Prefetches)
	}
	if c.FinishTime() > 100*testClock.Period() {
		t.Fatalf("prefetches stalled retirement: finish at %v", c.FinishTime())
	}
}

func TestSoftwarePrefetchDroppedWhenSaturated(t *testing.T) {
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: 10 * sim.Microsecond, capacity: 1}
	ops := []trace.Op{
		{Addr: 0x1000, Kind: trace.Load},       // occupies the only slot
		{Addr: 0x2000, Kind: trace.SWPrefetch}, // must be dropped
	}
	c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
	mem.onFree = c.Wake
	run(t, s, c)
	if c.Stats().DroppedPrefetches != 1 {
		t.Fatalf("dropped = %d, want 1", c.Stats().DroppedPrefetches)
	}
}

func TestDependentLoadOnCompletedProducer(t *testing.T) {
	// A dependent load whose producer already completed issues without
	// extra delay.
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(3)}
	ops := []trace.Op{
		{Addr: 0x1000, Kind: trace.Load},
		{NonMem: 40, Addr: 0x2000, Kind: trace.Load, DependsOnPrev: true},
	}
	c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
	run(t, s, c)
	// 42 instructions at width 4 dominate; the dependence adds ~3 cycles.
	if c.Cycles() > 25 {
		t.Fatalf("cycles = %d, dependence on completed producer over-stalled", c.Cycles())
	}
}

func TestOnDoneFiresOnce(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(1)}
	c, _ := New(s, mem, trace.NewSlice(computeOps(5)), cfg(0))
	n := 0
	c.OnDone = func() { n++ }
	s.Run()
	if n != 1 {
		t.Fatalf("OnDone fired %d times", n)
	}
	if !c.Done() || c.FinishTime() == 0 {
		t.Fatal("Done/FinishTime not set")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (sim.Time, uint64) {
		s := sim.NewScheduler()
		mem := &pendingMemory{sched: s, latency: 77 * sim.Nanosecond, capacity: 4}
		var ops []trace.Op
		for i := 0; i < 200; i++ {
			ops = append(ops, trace.Op{
				NonMem: i % 9, Addr: uint64(i*193) % (1 << 20) * 64,
				Kind: trace.Kind(i % 3), DependsOnPrev: i%5 == 0,
			})
		}
		c, _ := New(s, mem, trace.NewSlice(ops), cfg(0))
		mem.onFree = c.Wake
		s.RunWhile(func() bool { return !c.Done() })
		return c.FinishTime(), c.Stats().Retired
	}
	t1, r1 := runOnce()
	t2, r2 := runOnce()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, ROBSize: 64, StoreBuffer: 8, Clock: testClock},
		{Width: 4, ROBSize: 0, StoreBuffer: 8, Clock: testClock},
		{Width: 4, ROBSize: 64, StoreBuffer: 0, Clock: testClock},
		{Width: 4, ROBSize: 64, StoreBuffer: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: 0}
	c, _ := New(s, mem, trace.NewSlice(nil), cfg(0))
	s.Run()
	if !c.Done() || c.Stats().Retired != 0 {
		t.Fatal("empty trace did not finish cleanly")
	}
}
