package cpu

import (
	"testing"

	"memsim/internal/sim"
	"memsim/internal/trace"
)

func TestSustainedIPCBoundsThroughput(t *testing.T) {
	run := func(sustained float64) float64 {
		s := sim.NewScheduler()
		mem := &fixedMemory{sched: s, latency: testClock.Cycles(1)}
		c, err := New(s, mem, trace.NewSlice(computeOps(200)), Config{
			Width: 4, SustainedIPC: sustained, ROBSize: 64, StoreBuffer: 64, Clock: testClock,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.RunWhile(func() bool { return !c.Done() })
		return c.IPC()
	}
	full := run(0) // no bound
	if full < 3.5 {
		t.Fatalf("unbounded IPC = %v, want near 4", full)
	}
	half := run(2.0)
	if half < 1.8 || half > 2.05 {
		t.Fatalf("sustained-2.0 IPC = %v, want ~2", half)
	}
	frac := run(1.5)
	if frac < 1.35 || frac > 1.55 {
		t.Fatalf("sustained-1.5 IPC = %v, want ~1.5 (fractional credits)", frac)
	}
}

func TestSustainedIPCAboveWidthIsNoOp(t *testing.T) {
	s := sim.NewScheduler()
	mem := &fixedMemory{sched: s, latency: testClock.Cycles(1)}
	c, _ := New(s, mem, trace.NewSlice(computeOps(100)), Config{
		Width: 4, SustainedIPC: 9, ROBSize: 64, StoreBuffer: 64, Clock: testClock,
	})
	s.RunWhile(func() bool { return !c.Done() })
	if c.IPC() < 3.5 {
		t.Fatalf("IPC = %v; a bound above width must not throttle", c.IPC())
	}
}

func TestNegativeSustainedIPCRejected(t *testing.T) {
	cfg := Config{Width: 4, SustainedIPC: -1, ROBSize: 64, StoreBuffer: 8, Clock: testClock}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative sustained IPC accepted")
	}
}

func TestSustainedIPCDoesNotBreakMemoryStalls(t *testing.T) {
	// The dispatch throttle must compose with memory stalls, not
	// replace them: a serial miss chain stays miss-latency-bound.
	s := sim.NewScheduler()
	mem := &pendingMemory{sched: s, latency: 500 * sim.Nanosecond}
	var ops []trace.Op
	for i := 0; i < 8; i++ {
		ops = append(ops, trace.Op{Addr: uint64(i) * 4096, Kind: trace.Load, DependsOnPrev: i > 0})
	}
	c, _ := New(s, mem, trace.NewSlice(ops), Config{
		Width: 4, SustainedIPC: 2, ROBSize: 64, StoreBuffer: 64, Clock: testClock,
	})
	s.RunWhile(func() bool { return !c.Done() })
	if c.FinishTime() < 8*500*sim.Nanosecond {
		t.Fatalf("finish at %v, faster than the serial miss chain allows", c.FinishTime())
	}
}
