// Package cpu models the processing core as a trace-driven out-of-order
// window: a reorder buffer of fixed size, a fixed dispatch/retire
// width, and dependence-aware load issue.
//
// The model deliberately omits fetch, branch prediction, and functional
// units: for a memory-system study the core matters only as (a) a
// generator of overlapped memory accesses whose parallelism is bounded
// by the window and by load dependences, and (b) a consumer whose IPC
// degrades when retirement stalls on outstanding misses. Independent
// loads in the window overlap their misses (memory-level parallelism);
// a load marked dependent on its predecessor cannot issue until that
// load's data returns, which serializes pointer-chasing miss chains.
// Stores retire through a bounded store buffer without stalling
// retirement. This is the minimal structure that reproduces both
// latency-bound and bandwidth-bound behaviour.
package cpu

import (
	"fmt"

	"memsim/internal/sim"
	"memsim/internal/trace"
)

// Reply is the memory hierarchy's synchronous answer to an access.
type Reply struct {
	// Accepted is false when the hierarchy cannot take the access now
	// (MSHRs full); the core must retry after Wake.
	Accepted bool
	// Done is true when the completion time is known immediately
	// (cache hit); At holds it. When false, the completion callback
	// passed to Access fires later.
	Done bool
	// At is the completion time when Done.
	At sim.Time
}

// Memory is the interface the core drives. Access initiates a memory
// operation at the current simulated time; complete (non-nil only for
// loads) is invoked when data arrives if the reply is not Done.
type Memory interface {
	Access(addr uint64, kind trace.Kind, complete func(sim.Time)) Reply
}

// Config parameterizes the core.
type Config struct {
	// Width is the dispatch and retire width per cycle.
	Width int
	// SustainedIPC, when positive and below Width, bounds average
	// dispatch throughput. It stands in for the instruction-level-
	// parallelism limits (dependence chains, functional-unit and fetch
	// constraints) that keep real codes well under the machine width;
	// without it every compute phase would run at exactly Width IPC.
	// Zero means no limit beyond Width.
	SustainedIPC float64
	// ROBSize is the instruction window (the paper's 64-entry RUU).
	ROBSize int
	// StoreBuffer bounds retired-but-unissued stores plus other
	// accesses awaiting MSHRs before dispatch stalls.
	StoreBuffer int
	// Clock is the core clock (1.6 GHz in the base system).
	Clock sim.Clock
	// MaxInstrs ends the run after this many dispatched instructions;
	// zero means run until the trace is exhausted.
	MaxInstrs uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: width %d invalid", c.Width)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("cpu: ROB size %d invalid", c.ROBSize)
	}
	if c.StoreBuffer <= 0 {
		return fmt.Errorf("cpu: store buffer %d invalid", c.StoreBuffer)
	}
	if c.SustainedIPC < 0 {
		return fmt.Errorf("cpu: sustained IPC %v invalid", c.SustainedIPC)
	}
	if c.Clock.Period() <= 0 {
		return fmt.Errorf("cpu: clock not set")
	}
	return nil
}

// Stats counts core activity.
type Stats struct {
	Retired    uint64
	Loads      uint64
	Stores     uint64
	Prefetches uint64 // software prefetch instructions
	// DroppedPrefetches counts software prefetches discarded because
	// the hierarchy was saturated.
	DroppedPrefetches uint64
}

// entry is one in-flight instruction.
type entry struct {
	doneAt     sim.Time // sim.MaxTime while pending
	op         trace.Op
	dependents []*entry // dependence-deferred loads waiting on this load
}

// CPU is the core model. Create with New; it schedules itself on the
// shared Scheduler and reports completion through the Done callback.
type CPU struct {
	cfg   Config
	sched *sim.Scheduler
	mem   Memory
	gen   trace.Generator

	// Reorder buffer: a ring of entries, oldest at head.
	rob   []*entry
	head  int
	count int

	// blocked holds accesses accepted into the window but refused by
	// the hierarchy (MSHRs full), in issue order.
	blocked []*entry

	lastLoad *entry // most recent load, for dependence chaining

	// Instruction stream state.
	nonMemLeft int
	curOp      trace.Op
	haveOp     bool
	exhausted  bool
	dispatched uint64

	stepArmed bool
	finished  bool
	finishAt  sim.Time

	// Pre-bound scheduler callbacks (see sim.Callback): bound once at
	// construction so the per-event hot paths schedule without
	// allocating a closure.
	stepCB    sim.Callback
	issueCB   sim.Callback // arg: *entry
	releaseCB sim.Callback // arg: []*entry, dependents to issue

	// credits implements the SustainedIPC dispatch limiter: each cycle
	// adds SustainedIPC credits (capped at Width) and each dispatched
	// instruction consumes one.
	credits float64

	// OnDone, if set, fires once when the core retires its last
	// instruction.
	OnDone func()

	// Milestone and OnMilestone implement measurement warmup: the
	// callback fires once, at the end of the first cycle in which
	// retired instructions reach Milestone.
	Milestone   uint64
	OnMilestone func()

	stats Stats
}

// New builds a core over the scheduler, memory, and instruction stream,
// and arms it to begin executing at time zero.
func New(sched *sim.Scheduler, mem Memory, gen trace.Generator, cfg Config) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:   cfg,
		sched: sched,
		mem:   mem,
		gen:   gen,
		rob:   make([]*entry, cfg.ROBSize),
	}
	c.stepCB = func(sim.Time, any) { c.step() }
	c.issueCB = func(_ sim.Time, arg any) { c.issue(arg.(*entry)) }
	c.releaseCB = func(_ sim.Time, arg any) {
		for _, d := range arg.([]*entry) {
			c.issue(d)
		}
		c.Wake()
	}
	c.armStep(0)
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *CPU) Stats() Stats { return c.stats }

// Done reports whether the core has retired its final instruction.
func (c *CPU) Done() bool { return c.finished }

// FinishTime reports when the final instruction retired; valid only
// once Done.
func (c *CPU) FinishTime() sim.Time { return c.finishAt }

// Cycles reports the executed cycle count (through the finish time once
// done, else through now).
func (c *CPU) Cycles() int64 {
	t := c.sched.Now()
	if c.finished {
		t = c.finishAt
	}
	return c.cfg.Clock.ToCyclesCeil(t)
}

// IPC reports retired instructions per cycle so far.
func (c *CPU) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.stats.Retired) / float64(cy)
}

// DebugState summarizes internal progress state for deadlock
// diagnostics.
func (c *CPU) DebugState() string {
	head := "empty"
	if c.count > 0 {
		e := c.rob[c.head]
		head = fmt.Sprintf("kind=%v addr=%#x doneAt=%v dep=%v deferredDeps=%d",
			e.op.Kind, e.op.Addr, e.doneAt, e.op.DependsOnPrev, len(e.dependents))
	}
	return fmt.Sprintf("count=%d blocked=%d exhausted=%v dispatched=%d stepArmed=%v head{%s}",
		c.count, len(c.blocked), c.exhausted, c.dispatched, c.stepArmed, head)
}

// Wake nudges a stalled core, e.g. after the hierarchy frees an MSHR.
func (c *CPU) Wake() {
	if !c.finished {
		c.armStep(0)
	}
}

// armStep schedules a step at the next cycle edge at or after
// now+delay, if one is not already scheduled.
func (c *CPU) armStep(delay sim.Time) {
	if c.stepArmed {
		return
	}
	c.stepArmed = true
	at := c.cfg.Clock.NextEdge(c.sched.Now() + delay)
	c.sched.AtCall(at, c.stepCB, nil)
}

// nextInstr pulls the next instruction from the stream. It returns
// (op, true) for a memory operation, (zero, false) for a plain
// instruction, and sets c.exhausted at end of stream or budget.
func (c *CPU) nextInstr() (trace.Op, bool, bool) {
	if c.cfg.MaxInstrs > 0 && c.dispatched >= c.cfg.MaxInstrs {
		c.exhausted = true
		return trace.Op{}, false, false
	}
	if c.nonMemLeft > 0 {
		c.nonMemLeft--
		return trace.Op{}, false, true
	}
	if c.haveOp {
		op := c.curOp
		c.haveOp = false
		return op, true, true
	}
	op, ok := c.gen.Next()
	if !ok {
		c.exhausted = true
		return trace.Op{}, false, false
	}
	c.nonMemLeft = op.NonMem
	c.curOp = op
	c.haveOp = true
	return c.nextInstr()
}

// push appends an entry at the ROB tail.
func (c *CPU) push(e *entry) {
	c.rob[(c.head+c.count)%c.cfg.ROBSize] = e
	c.count++
}

// completeLoad records a load's data arrival and releases dependents.
func (c *CPU) completeLoad(e *entry, at sim.Time) {
	e.doneAt = at
	deps := e.dependents
	e.dependents = nil
	for _, d := range deps {
		c.issue(d)
	}
	c.Wake()
}

// issue sends an entry's memory operation to the hierarchy, or parks it
// on the blocked list when resources are exhausted.
func (c *CPU) issue(e *entry) {
	if len(c.blocked) > 0 {
		// Preserve issue order behind already-blocked accesses.
		c.blocked = append(c.blocked, e)
		return
	}
	if !c.tryIssue(e) {
		c.blocked = append(c.blocked, e)
	}
}

// tryIssue attempts the access; it reports false on resource rejection.
func (c *CPU) tryIssue(e *entry) bool {
	var complete func(sim.Time)
	if e.op.Kind == trace.Load {
		complete = func(at sim.Time) { c.completeLoad(e, at) }
	}
	rep := c.mem.Access(e.op.Addr, e.op.Kind, complete)
	if !rep.Accepted {
		return false
	}
	if e.op.Kind == trace.Load && rep.Done {
		e.doneAt = rep.At
		// Dependents may have piled up while this load sat deferred or
		// blocked; release them when its data is available.
		if len(e.dependents) > 0 {
			deps := e.dependents
			e.dependents = nil
			c.sched.AtCall(rep.At, c.releaseCB, deps)
		}
	}
	return true
}

// step runs one core cycle: retire, retry blocked accesses, dispatch,
// and re-arm.
func (c *CPU) step() {
	c.stepArmed = false
	if c.finished {
		return
	}
	now := c.sched.Now()
	period := c.cfg.Clock.Period()

	// Retire up to Width completed instructions in order.
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := c.rob[c.head]
		if e.doneAt > now {
			break
		}
		c.rob[c.head] = nil
		c.head = (c.head + 1) % c.cfg.ROBSize
		c.count--
		c.stats.Retired++
	}
	if c.OnMilestone != nil && c.stats.Retired >= c.Milestone {
		f := c.OnMilestone
		c.OnMilestone = nil
		f()
	}

	// Retry blocked accesses in order.
	for len(c.blocked) > 0 {
		if !c.tryIssue(c.blocked[0]) {
			break
		}
		c.blocked[0] = nil
		c.blocked = c.blocked[1:]
	}

	// Dispatch up to Width instructions, throttled by the sustained-IPC
	// credit pool when one is configured.
	limit := float64(c.cfg.Width)
	if c.cfg.SustainedIPC > 0 && c.cfg.SustainedIPC < limit {
		c.credits += c.cfg.SustainedIPC
		if c.credits > limit {
			c.credits = limit
		}
	} else {
		c.credits = limit
	}
	for n := 0; n < c.cfg.Width && c.credits >= 1 && c.count < c.cfg.ROBSize && !c.exhausted && len(c.blocked) < c.cfg.StoreBuffer; n++ {
		c.credits--
		op, isMem, ok := c.nextInstr()
		if !ok {
			break
		}
		c.dispatched++
		e := &entry{doneAt: now + period, op: op}
		if isMem {
			switch op.Kind {
			case trace.Load:
				c.stats.Loads++
				e.doneAt = sim.MaxTime
				prod := c.lastLoad
				c.lastLoad = e
				if op.DependsOnPrev && prod != nil && prod.doneAt > now {
					if prod.doneAt == sim.MaxTime {
						// Producer data time unknown; issue on completion.
						prod.dependents = append(prod.dependents, e)
					} else {
						// Producer completes at a known future time.
						c.sched.AtCall(prod.doneAt, c.issueCB, e)
					}
				} else {
					c.issue(e)
				}
			case trace.Store:
				c.stats.Stores++
				c.issue(e)
			case trace.SWPrefetch:
				c.stats.Prefetches++
				// Prefetches are hints: drop rather than block.
				if len(c.blocked) > 0 || !c.tryIssue(e) {
					c.stats.DroppedPrefetches++
				}
			}
		}
		c.push(e)
	}

	// Finished?
	if c.exhausted && c.count == 0 {
		c.finished = true
		c.finishAt = now
		if c.OnDone != nil {
			c.OnDone()
		}
		return
	}

	// Re-arm: next cycle if progress is possible then; otherwise wait
	// for the head's known completion; otherwise idle until a callback
	// wakes us.
	next := now + period
	canDispatch := !c.exhausted && c.count < c.cfg.ROBSize && len(c.blocked) < c.cfg.StoreBuffer
	canRetire := c.count > 0 && c.rob[c.head].doneAt <= next
	switch {
	case canDispatch || canRetire:
		c.armStep(period)
	case c.count > 0 && c.rob[c.head].doneAt < sim.MaxTime:
		c.armStep(c.rob[c.head].doneAt - now)
	}
}
