package obs

import (
	"bytes"
	"testing"

	"memsim/internal/sim"
)

// sampleEvents covers every tid lane and both phase shapes.
func sampleEvents() []Event {
	return []Event{
		{At: 1000, Dur: 5000, A: 2, B: 1, Kind: EvChannelBusy, Group: 0},
		{At: 2000, A: 17, B: 3, Kind: EvBankActivate, Group: 1},
		{At: 3000, A: 17, B: uint64(PrechargeConflict), Kind: EvBankPrecharge, Group: 1},
		{At: 4000, Dur: 2000, A: 5, Kind: EvRefresh, Group: 0},
		{At: 5000, A: 0xdead0, B: uint64(DropResident), Kind: EvPrefetchDrop},
		{At: 6000, A: 0xbeef0, Kind: EvRegionCreate},
	}
}

// TestChromeTraceRoundTrip writes a trace and parses it back,
// checking structure survives encoding/json.
func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var meta, spans, instants int
	names := map[int]string{}
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name == "thread_name" {
				names[e.Tid] = e.Args["name"]
			}
			continue
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %s has dur %v", e.Name, e.Dur)
			}
		case "i":
			instants++
			if e.S != "t" {
				t.Errorf("instant %s has scope %q, want t", e.Name, e.S)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
			continue
		}
		if _, ok := KindByName(e.Name); !ok {
			t.Errorf("event name %q does not resolve to a kind", e.Name)
		}
		if e.Pid != chromePid {
			t.Errorf("event %s pid = %d", e.Name, e.Pid)
		}
	}
	if spans != 2 || instants != 4 {
		t.Errorf("spans/instants = %d/%d, want 2/4", spans, instants)
	}
	// 1 process_name + one thread_name per distinct track:
	// channel 0, banks 1, prefetch engine, hierarchy.
	if meta != 5 {
		t.Errorf("metadata records = %d, want 5", meta)
	}
	for tid, want := range map[int]string{
		0*lanesPerGroup + laneChannel: "channel 0",
		1*lanesPerGroup + laneBanks:   "banks 1",
		tidPrefetch:                   "prefetch engine",
		tidHierarchy:                  "hierarchy",
	} {
		if names[tid] != want {
			t.Errorf("tid %d named %q, want %q", tid, names[tid], want)
		}
	}
}

// TestChromeTraceMulti checks the multi-system layout: one pid per
// stream, process_name metadata carrying the label, and events
// attributed to their own system's pid.
func TestChromeTraceMulti(t *testing.T) {
	systems := []SystemEvents{
		{Label: "sys0-mcf", Events: sampleEvents()},
		{Label: "sys1-swim", Events: sampleEvents()[:2]},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceMulti(&buf, systems); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	procs := map[int]string{}
	perPid := map[int]int{}
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				procs[e.Pid] = e.Args["name"]
			}
			continue
		}
		perPid[e.Pid]++
	}
	if procs[1] != "sys0-mcf" || procs[2] != "sys1-swim" {
		t.Fatalf("process names = %v", procs)
	}
	if perPid[1] != len(sampleEvents()) || perPid[2] != 2 {
		t.Fatalf("events per pid = %v", perPid)
	}
}

// TestChromeTraceArgs pins the arg vocabulary cmd/obsdump parses.
func TestChromeTraceArgs(t *testing.T) {
	evs := ChromeEvents(sampleEvents())
	byName := map[string]ChromeEvent{}
	for _, e := range evs {
		if e.Ph != "M" {
			byName[e.Name] = e
		}
	}
	if got := byName["channel-busy"].Args; got["class"] != "prefetch" || got["rowhit"] != "1" {
		t.Errorf("channel-busy args = %v", got)
	}
	if got := byName["bank-precharge"].Args; got["bank"] != "17" || got["reason"] != "conflict" {
		t.Errorf("bank-precharge args = %v", got)
	}
	if got := byName["prefetch-drop"].Args; got["addr"] != "0xdead0" || got["reason"] != "resident" {
		t.Errorf("prefetch-drop args = %v", got)
	}
	if got := byName["region-create"].Args; got["region"] != "0xbeef0" {
		t.Errorf("region-create args = %v", got)
	}
}

// TestChromeTraceTimebase checks the picosecond -> microsecond
// conversion: 1000 ps = 1 ns = 0.001 us.
func TestChromeTraceTimebase(t *testing.T) {
	evs := ChromeEvents([]Event{{At: sim.Nanosecond, Dur: 2 * sim.Nanosecond, Kind: EvChannelBusy}})
	e := evs[len(evs)-1]
	if e.Ts != 0.001 || e.Dur != 0.002 {
		t.Errorf("ts/dur = %v/%v us, want 0.001/0.002", e.Ts, e.Dur)
	}
}

// TestChromeTraceByteDeterminism checks that the same event sequence
// always encodes to the same bytes — the property the end-to-end
// determinism test (obs_test.go at the module root) relies on.
func TestChromeTraceByteDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of the same events differ")
	}
}
