package obs

import (
	"fmt"

	"memsim/internal/sim"
)

// EventKind is the trace event taxonomy. Span kinds carry a duration;
// instant kinds mark a single simulated instant.
type EventKind uint8

// Event kinds. The A/B payload fields are kind-specific; see each
// comment. Group is the channel-group index for channel-anchored
// kinds and 0 for engine/hierarchy kinds.
const (
	// EvChannelBusy is a span: one block access occupying the channel
	// buses, from its first packet to its last data packet. A is the
	// access class (channel.Class), B is 1 when the first span hit an
	// open row.
	EvChannelBusy EventKind = iota
	// EvBankActivate is an instant: a row opened. A is the global bank
	// index (device*BanksPerDevice+bank), B the row.
	EvBankActivate
	// EvBankPrecharge is an instant: a bank closed. A is the global
	// bank index, B a PrechargeReason.
	EvBankPrecharge
	// EvRefresh is a span: one refresh operation occupying all buses.
	// A is the global bank index it precharged.
	EvRefresh
	// EvPrefetchIssue is an instant: the access prioritizer pulled a
	// prefetch onto an idle channel. A is the group-local block
	// address.
	EvPrefetchIssue
	// EvPrefetchDrop is an instant: a prefetch candidate was discarded
	// before issue. A is the block address, B a DropReason.
	EvPrefetchDrop
	// EvPrefetchPromote is an instant: a demand miss re-promoted its
	// queued region to the head (LIFO). A is the region base address.
	EvPrefetchPromote
	// EvRegionCreate is an instant: a demand miss opened a new region
	// entry. A is the region base address.
	EvRegionCreate
	// EvRegionReplace is an instant: a full queue evicted a region
	// before completion. A is the evicted region's base address.
	EvRegionReplace
	// EvDemandBypass is an instant: a demand miss arrived while a
	// prefetch transfer still occupied the channel and will bypass any
	// queued prefetches. A is the block address.
	EvDemandBypass
	// EvLateMerge is an instant: a demand miss merged into an
	// in-flight prefetch of the same block. A is the block address.
	EvLateMerge
	// EvPollution is an instant: a prefetched block was evicted from
	// the cache without ever being referenced. A is the block address.
	EvPollution
	// EvSchedDecision is an instant: the controller resolved a
	// contested issue decision (more than one queued request). A is the
	// chosen request's address, B the interned id of the primary
	// scheduling policy (see Tracer.InternPolicy).
	EvSchedDecision
	// EvSchedAlt is an instant: what one armed alternative scheduling
	// policy would have issued at the same decision point. A is the
	// alternative's chosen address, B packs id<<1 | agree, where agree
	// is 1 when it matched the primary choice.
	EvSchedAlt
	// EvPrefetchDecision is an instant: the primary prefetch scheme
	// produced its next candidate. A is the block address, B the
	// interned id of the primary scheme.
	EvPrefetchDecision
	// EvPrefetchAlt is an instant: what one shadow prefetch scheme
	// would have fetched next at the same point. A is the shadow's
	// candidate block (0 when it had none and agree is 0), B packs
	// id<<1 | agree.
	EvPrefetchAlt

	numEventKinds
)

// String names the kind (also the Chrome trace event name).
func (k EventKind) String() string {
	switch k {
	case EvChannelBusy:
		return "channel-busy"
	case EvBankActivate:
		return "bank-activate"
	case EvBankPrecharge:
		return "bank-precharge"
	case EvRefresh:
		return "refresh"
	case EvPrefetchIssue:
		return "prefetch-issue"
	case EvPrefetchDrop:
		return "prefetch-drop"
	case EvPrefetchPromote:
		return "prefetch-promote"
	case EvRegionCreate:
		return "region-create"
	case EvRegionReplace:
		return "region-replace"
	case EvDemandBypass:
		return "demand-bypass"
	case EvLateMerge:
		return "late-merge"
	case EvPollution:
		return "pollution"
	case EvSchedDecision:
		return "sched-decision"
	case EvSchedAlt:
		return "sched-alt"
	case EvPrefetchDecision:
		return "prefetch-decision"
	case EvPrefetchAlt:
		return "prefetch-alt"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// KindByName resolves a Chrome event name back to its kind (trace
// file analysis); ok is false for foreign names.
func KindByName(name string) (EventKind, bool) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// PrechargeReason is EvBankPrecharge's B payload.
type PrechargeReason uint64

// Precharge reasons.
const (
	// PrechargeConflict: the bank was open at a different row than the
	// access needed — a row-buffer conflict.
	PrechargeConflict PrechargeReason = iota
	// PrechargeNeighbor: an adjacent bank activated and the shared
	// sense amps forced this bank closed.
	PrechargeNeighbor
	// PrechargeClosedPage: the closed-page policy released the row
	// after its access.
	PrechargeClosedPage
	// PrechargeRefresh: a refresh operation closed the bank.
	PrechargeRefresh
)

// String names the reason.
func (r PrechargeReason) String() string {
	switch r {
	case PrechargeConflict:
		return "conflict"
	case PrechargeNeighbor:
		return "neighbor"
	case PrechargeClosedPage:
		return "closed-page"
	case PrechargeRefresh:
		return "refresh"
	default:
		return fmt.Sprintf("PrechargeReason(%d)", uint64(r))
	}
}

// DropReason is EvPrefetchDrop's B payload.
type DropReason uint64

// Drop reasons.
const (
	// DropResident: the block already sits in the L2.
	DropResident DropReason = iota
	// DropBuffered: the block already sits in the separate prefetch
	// buffer.
	DropBuffered
	// DropInFlight: a prefetch of the block is already in flight.
	DropInFlight
	// DropDemandPending: a demand miss to the block is already
	// outstanding in the MSHRs.
	DropDemandPending
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropResident:
		return "resident"
	case DropBuffered:
		return "buffered"
	case DropInFlight:
		return "in-flight"
	case DropDemandPending:
		return "demand-pending"
	default:
		return fmt.Sprintf("DropReason(%d)", uint64(r))
	}
}

// Event is one trace record: 40 bytes, no pointers, so the ring is a
// single flat allocation the garbage collector never scans.
type Event struct {
	// At is when the event happened (span start for span kinds).
	At sim.Time
	// Dur is the span length; zero for instants.
	Dur sim.Time
	// A and B are kind-specific payloads.
	A, B uint64
	// Kind classifies the event.
	Kind EventKind
	// Group is the channel-group index for channel-anchored kinds.
	Group int32
}

// Tracer records events into a bounded ring buffer. All methods are
// nil-safe: with tracing disabled every emit site costs one branch.
// The tracer is written from inside the event loop but only read at
// run boundaries, and it never spawns goroutines or reads wall-clock
// time, so traced runs stay deterministic.
type Tracer struct {
	now     func() sim.Time
	buf     []Event
	next    int // ring cursor: the oldest retained event once full
	emitted uint64
	// policies is the interned policy-name table; decision events
	// reference names by index (see InternPolicy).
	policies []string
}

// NewTracer returns a tracer holding the most recent capacity events.
// now supplies the simulated clock for Instant.
func NewTracer(capacity int, now func() sim.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{now: now, buf: make([]Event, 0, capacity)}
}

// Emit appends one event, overwriting the oldest when the ring is
// full.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.emitted++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Span records a [start, end) span event.
func (t *Tracer) Span(kind EventKind, group int, start, end sim.Time, a, b uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{At: start, Dur: end - start, A: a, B: b, Kind: kind, Group: int32(group)})
}

// Instant records an event at the current simulated time.
func (t *Tracer) Instant(kind EventKind, group int, a, b uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{At: t.now(), A: a, B: b, Kind: kind, Group: int32(group)})
}

// InstantAt records an event at an explicit time (for emitters that
// resolve timing retroactively, like the channel's bus-reservation
// model).
func (t *Tracer) InstantAt(kind EventKind, group int, at sim.Time, a, b uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, A: a, B: b, Kind: kind, Group: int32(group)})
}

// InternPolicy registers a policy name on the tracer and returns its
// stable id — the compact policy reference packed into decision
// events' payloads. Repeated calls with one name return one id; on a
// nil tracer the id is 0.
func (t *Tracer) InternPolicy(name string) uint64 {
	if t == nil {
		return 0
	}
	for i, n := range t.policies {
		if n == name {
			return uint64(i)
		}
	}
	t.policies = append(t.policies, name)
	return uint64(len(t.policies) - 1)
}

// PolicyNames returns a copy of the interned policy-name table,
// indexed by the ids InternPolicy issued.
func (t *Tracer) PolicyNames() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.policies...)
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Emitted reports how many events were ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Dropped reports how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted - uint64(len(t.buf))
}

// Events returns the retained events in emission order, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Last returns up to k of the most recent events, oldest first. The
// watchdog embeds these in its diagnostic dump, so a no-progress abort
// shows what the memory system last did.
func (t *Tracer) Last(k int) []Event {
	evs := t.Events()
	if len(evs) > k {
		evs = evs[len(evs)-k:]
	}
	return evs
}
