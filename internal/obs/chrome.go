package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"memsim/internal/sim"
)

// Chrome trace-event export: the tracer's ring renders to the JSON
// format chrome://tracing and Perfetto load directly. Spans become
// complete ("X") events, instants become instant ("i") events, and
// each (group, lane) pair gets its own named track so channel
// occupancy, bank state churn, and prefetch engine activity line up
// on one shared time axis.
//
// Timestamps are microseconds (the format's unit) derived from
// picosecond simulated time, so they are exact to 1e-6 us and the
// export is byte-deterministic: encoding/json sorts map keys and
// struct fields keep declaration order.

// ChromeEvent is one trace-event record. Exported so cmd/obsdump and
// tests can round-trip trace files through encoding/json.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the file layout: the JSON object form of the format,
// which tolerates the metadata fields Perfetto shows in its header.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// Track (tid) layout: each channel group owns a pair of lanes, the
// engine-level lanes sit above any realistic group count.
const (
	lanesPerGroup = 2
	laneChannel   = 1 // bus-occupancy spans + issue-time instants
	laneBanks     = 2 // bank open/close churn
	tidPrefetch   = 9001
	tidHierarchy  = 9002
	tidDecisions  = 9003
	chromePid     = 1
)

// tidFor maps an event to its track.
func tidFor(e Event) int {
	switch e.Kind {
	case EvChannelBusy, EvRefresh, EvPrefetchIssue, EvDemandBypass:
		return int(e.Group)*lanesPerGroup + laneChannel
	case EvBankActivate, EvBankPrecharge:
		return int(e.Group)*lanesPerGroup + laneBanks
	case EvPrefetchPromote, EvRegionCreate, EvRegionReplace:
		return tidPrefetch
	case EvSchedDecision, EvSchedAlt, EvPrefetchDecision, EvPrefetchAlt:
		return tidDecisions
	default: // EvPrefetchDrop, EvLateMerge, EvPollution
		return tidHierarchy
	}
}

// tidName labels a track for the viewer.
func tidName(tid int) string {
	switch tid {
	case tidPrefetch:
		return "prefetch engine"
	case tidHierarchy:
		return "hierarchy"
	case tidDecisions:
		return "decisions"
	}
	group := (tid - 1) / lanesPerGroup
	if (tid-1)%lanesPerGroup == laneChannel-1 {
		return fmt.Sprintf("channel %d", group)
	}
	return fmt.Sprintf("banks %d", group)
}

// micros converts simulated picoseconds to the format's microseconds.
func micros(t sim.Time) float64 { return float64(t) / 1e6 }

func hex(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

// classNames mirrors channel.Class without importing it (obs sits
// below the modelling packages).
var classNames = [...]string{"demand", "writeback", "prefetch"}

func className(c uint64) string {
	if c < uint64(len(classNames)) {
		return classNames[c]
	}
	return strconv.FormatUint(c, 10)
}

// policyName resolves an interned policy id against the system's
// name table, falling back to a positional label for foreign traces.
func policyName(policies []string, id uint64) string {
	if id < uint64(len(policies)) {
		return policies[id]
	}
	return "policy-" + strconv.FormatUint(id, 10)
}

// eventArgs decodes the kind-specific payload into viewer-friendly
// args. Keys are stable; cmd/obsdump parses them back. policies is
// the tracer's interned policy-name table (decision events only).
func eventArgs(e Event, policies []string) map[string]string {
	switch e.Kind {
	case EvChannelBusy:
		return map[string]string{"class": className(e.A), "rowhit": strconv.FormatUint(e.B, 10)}
	case EvBankActivate:
		return map[string]string{"bank": strconv.FormatUint(e.A, 10), "row": strconv.FormatUint(e.B, 10)}
	case EvBankPrecharge:
		return map[string]string{"bank": strconv.FormatUint(e.A, 10), "reason": PrechargeReason(e.B).String()}
	case EvRefresh:
		return map[string]string{"bank": strconv.FormatUint(e.A, 10)}
	case EvPrefetchIssue, EvDemandBypass, EvLateMerge, EvPollution:
		return map[string]string{"addr": hex(e.A)}
	case EvPrefetchDrop:
		return map[string]string{"addr": hex(e.A), "reason": DropReason(e.B).String()}
	case EvPrefetchPromote, EvRegionCreate, EvRegionReplace:
		return map[string]string{"region": hex(e.A)}
	case EvSchedDecision, EvPrefetchDecision:
		return map[string]string{"addr": hex(e.A), "policy": policyName(policies, e.B)}
	case EvSchedAlt, EvPrefetchAlt:
		return map[string]string{
			"alt":    hex(e.A),
			"policy": policyName(policies, e.B>>1),
			"agree":  strconv.FormatUint(e.B&1, 10),
		}
	default:
		return nil
	}
}

// ChromeEvents renders trace events into the trace-event list,
// prefixed with the process/thread naming metadata for every track
// that appears.
func ChromeEvents(events []Event) []ChromeEvent {
	return ChromeEventsMulti([]SystemEvents{{Label: "memsim", Events: events}})
}

// SystemEvents pairs one system's label with its trace stream for the
// multi-system export: a cluster run has one stream per member.
type SystemEvents struct {
	Label  string
	Events []Event
	// Policies is the system tracer's interned policy-name table
	// (Tracer.PolicyNames); decision events resolve names against it.
	Policies []string
}

// ChromeEventsMulti renders several systems' streams into one trace.
// System i becomes process pid i+1 named by its label, so the viewer
// groups each system's channel/bank/prefetch lanes under its own
// process header on the shared time axis. A single stream labeled
// "memsim" reproduces the classic single-system layout exactly.
func ChromeEventsMulti(systems []SystemEvents) []ChromeEvent {
	var out []ChromeEvent
	for i, sys := range systems {
		pid := chromePid + i
		tids := map[int]bool{}
		for _, e := range sys.Events {
			tids[tidFor(e)] = true
		}
		order := make([]int, 0, len(tids))
		for tid := range tids {
			order = append(order, tid)
		}
		sort.Ints(order)

		out = append(out, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": sys.Label},
		})
		for _, tid := range order {
			out = append(out, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": tidName(tid)},
			})
		}
		for _, e := range sys.Events {
			ce := ChromeEvent{
				Name: e.Kind.String(),
				Cat:  "memsim",
				Ts:   micros(e.At),
				Pid:  pid,
				Tid:  tidFor(e),
				Args: eventArgs(e, sys.Policies),
			}
			if e.Kind.isSpan() {
				ce.Ph = "X"
				ce.Dur = micros(e.Dur)
			} else {
				ce.Ph = "i"
				ce.S = "t"
			}
			out = append(out, ce)
		}
	}
	return out
}

// isSpan reports whether the kind renders as a duration event.
func (k EventKind) isSpan() bool { return k == EvChannelBusy || k == EvRefresh }

// WriteChromeTrace writes the events as a chrome://tracing-loadable
// JSON file. Output is byte-deterministic for a given event sequence.
// The tracer's policy-name table rides along so decision events carry
// readable policy names.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceMulti(w, []SystemEvents{
		{Label: "memsim", Events: t.Events(), Policies: t.PolicyNames()},
	})
}

// WriteChromeTrace writes an explicit event sequence.
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChromeTrace{DisplayTimeUnit: "ns", TraceEvents: ChromeEvents(events)})
}

// WriteChromeTraceMulti writes several systems' streams as one
// loadable trace file (see ChromeEventsMulti for the layout).
func WriteChromeTraceMulti(w io.Writer, systems []SystemEvents) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChromeTrace{DisplayTimeUnit: "ns", TraceEvents: ChromeEventsMulti(systems)})
}

// ParseChromeTrace reads a trace file written by WriteChromeTrace (or
// any tool emitting the JSON object form).
func ParseChromeTrace(r io.Reader) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	return &t, nil
}
