package obs

import (
	"bytes"
	"testing"

	"memsim/internal/sim"
)

func TestInternPolicy(t *testing.T) {
	tr := NewTracer(16, func() sim.Time { return 0 })
	if got := tr.InternPolicy("frfcfs"); got != 0 {
		t.Fatalf("first intern = %d, want 0", got)
	}
	if got := tr.InternPolicy("fcfs"); got != 1 {
		t.Fatalf("second intern = %d, want 1", got)
	}
	// Interning an existing name returns the original id.
	if got := tr.InternPolicy("frfcfs"); got != 0 {
		t.Fatalf("re-intern = %d, want 0", got)
	}
	names := tr.PolicyNames()
	if len(names) != 2 || names[0] != "frfcfs" || names[1] != "fcfs" {
		t.Fatalf("PolicyNames = %v", names)
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// tracer's intern table.
	names[0] = "mutated"
	if got := tr.PolicyNames()[0]; got != "frfcfs" {
		t.Fatalf("intern table corrupted: %q", got)
	}

	// A nil tracer is inert, matching the disabled-tracing path.
	var nilTr *Tracer
	if got := nilTr.InternPolicy("x"); got != 0 {
		t.Fatalf("nil InternPolicy = %d, want 0", got)
	}
	if got := nilTr.PolicyNames(); got != nil {
		t.Fatalf("nil PolicyNames = %v, want nil", got)
	}
}

func TestDecisionEventNames(t *testing.T) {
	for _, tc := range []struct {
		kind EventKind
		want string
	}{
		{EvSchedDecision, "sched-decision"},
		{EvSchedAlt, "sched-alt"},
		{EvPrefetchDecision, "prefetch-decision"},
		{EvPrefetchAlt, "prefetch-alt"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.kind, got, tc.want)
		}
		k, ok := KindByName(tc.want)
		if !ok || k != tc.kind {
			t.Errorf("KindByName(%q) = %v, %v", tc.want, k, ok)
		}
	}
}

func TestDecisionTrack(t *testing.T) {
	for _, kind := range []EventKind{EvSchedDecision, EvSchedAlt, EvPrefetchDecision, EvPrefetchAlt} {
		if got := tidFor(Event{Kind: kind}); got != tidDecisions {
			t.Errorf("tidFor(%s) = %d, want %d", kind, got, tidDecisions)
		}
	}
}

// TestDecisionEventArgs pins the counterfactual packing contract the
// trace consumers (obsdump) rely on: decision events carry the primary
// policy id in B, alternative events pack id<<1|agree.
func TestDecisionEventArgs(t *testing.T) {
	policies := []string{"frfcfs", "fcfs"}

	args := eventArgs(Event{Kind: EvSchedDecision, A: 0x40, B: 0}, policies)
	if args["policy"] != "frfcfs" || args["addr"] != "0x40" {
		t.Fatalf("decision args = %v", args)
	}

	// Alt with id 1, agree bit set.
	args = eventArgs(Event{Kind: EvSchedAlt, A: 0x80, B: 1<<1 | 1}, policies)
	if args["policy"] != "fcfs" || args["agree"] != "1" || args["alt"] != "0x80" {
		t.Fatalf("agreeing alt args = %v", args)
	}

	// Alt with id 0, disagreeing.
	args = eventArgs(Event{Kind: EvPrefetchAlt, A: 0xc0, B: 0}, policies)
	if args["policy"] != "frfcfs" || args["agree"] != "0" {
		t.Fatalf("diverging alt args = %v", args)
	}

	// An id outside the interned table degrades to a stable placeholder
	// rather than panicking (stale trace vs. newer reader).
	args = eventArgs(Event{Kind: EvSchedDecision, A: 0, B: 7}, policies)
	if args["policy"] != "policy-7" {
		t.Fatalf("fallback policy name = %q", args["policy"])
	}
}

// TestChromeDecisionRoundTrip writes decision events through the full
// multi-system writer and parses them back, checking the policy names
// survive the trip from intern table to JSON args.
func TestChromeDecisionRoundTrip(t *testing.T) {
	tr := NewTracer(16, func() sim.Time { return 1000 })
	primary := tr.InternPolicy("frfcfs")
	alt := tr.InternPolicy("fcfs")
	tr.Instant(EvSchedDecision, 0, 0x40, primary)
	tr.Instant(EvSchedAlt, 0, 0x80, alt<<1|0)

	var buf bytes.Buffer
	err := WriteChromeTraceMulti(&buf, []SystemEvents{{
		Label:    "memsim",
		Events:   tr.Events(),
		Policies: tr.PolicyNames(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sawDecision, sawAlt bool
	for _, e := range parsed.TraceEvents {
		switch e.Name {
		case "sched-decision":
			sawDecision = true
			if e.Args["policy"] != "frfcfs" {
				t.Fatalf("decision policy = %q", e.Args["policy"])
			}
		case "sched-alt":
			sawAlt = true
			if e.Args["policy"] != "fcfs" || e.Args["agree"] != "0" {
				t.Fatalf("alt args = %v", e.Args)
			}
		}
	}
	if !sawDecision || !sawAlt {
		t.Fatalf("decision=%v alt=%v: events missing from trace", sawDecision, sawAlt)
	}
}
