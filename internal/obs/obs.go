// Package obs is the simulator's observability layer: a metrics
// registry with Prometheus-style text exposition and JSON snapshots, a
// bounded in-memory tracer of typed simulation events with Chrome
// trace-event export, and a timeline of periodic metric samples.
//
// The paper's central claims are temporal: prefetches issue only when
// a channel would otherwise idle, the prefetch row-buffer hit rate
// approaches 100%, and pollution is bounded to one LRU way. End-of-run
// aggregates cannot show any of that; per-event timelines can. obs
// gives every simulator layer a uniform way to expose both.
//
// Design constraints, in order:
//
//   - Determinism. obs runs inside the event loop, so it obeys the
//     same rules memlint enforces on the simulation core: no wall
//     clock, no goroutines, no unordered map iteration. Identical
//     seeds produce byte-identical trace and metrics output.
//   - A disabled instrument costs one branch. Every hot-path hook is
//     a method on a possibly-nil receiver that returns immediately
//     when the instrument is off; components hold plain pointers and
//     never check a config flag themselves.
//   - Bounded memory. The tracer is a fixed-capacity ring: a long run
//     keeps the most recent events and counts what it dropped, so
//     tracing a billion-event run cannot exhaust the host.
//
// Export (file writes, JSON encoding) happens outside the event loop,
// at run boundaries or sampling checkpoints, never inside a scheduled
// callback.
package obs

import (
	"memsim/internal/sim"
)

// DefaultTraceEvents is the tracer ring capacity when the
// configuration does not specify one: large enough to hold several
// milliseconds of simulated channel activity, small enough (~3 MB) to
// be irrelevant next to the simulator's own footprint.
const DefaultTraceEvents = 1 << 16

// Config selects which instruments a run carries. The zero value
// disables all of them; a disabled observer adds one predictable
// branch per hook site.
type Config struct {
	// Metrics enables the registry: every layer registers its
	// counters, gauges, and histograms at system construction.
	Metrics bool
	// Trace enables the event tracer.
	Trace bool
	// TraceEvents is the ring capacity in events; zero means
	// DefaultTraceEvents.
	TraceEvents int
	// SampleEvery, when positive, records a timeline sample of all
	// registry values each time this much simulated time passes
	// (checked at the event loop's coarse sampling stride, so samples
	// land at the first opportunity after each boundary). Implies
	// Metrics.
	SampleEvery sim.Time
}

// Enabled reports whether any instrument is on.
func (c Config) Enabled() bool { return c.Metrics || c.Trace || c.SampleEvery > 0 }

// Observer bundles the instruments of one run. Fields are nil when
// the corresponding instrument is disabled; all hot-path methods on
// them are nil-safe, so wiring code can pass them along unguarded.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	Timeline *Timeline
}

// New builds the observer for cfg. now supplies the simulated clock
// for instant events (typically sim.Scheduler.Now).
func New(cfg Config, now func() sim.Time) *Observer {
	o := &Observer{}
	if cfg.Metrics || cfg.SampleEvery > 0 {
		o.Registry = NewRegistry()
	}
	if cfg.Trace {
		n := cfg.TraceEvents
		if n <= 0 {
			n = DefaultTraceEvents
		}
		o.Tracer = NewTracer(n, now)
	}
	if cfg.SampleEvery > 0 {
		o.Timeline = NewTimeline(o.Registry, cfg.SampleEvery)
	}
	return o
}
