package obs

import (
	"testing"

	"memsim/internal/sim"
)

// TestRingWraparound checks that a full ring overwrites oldest-first
// and Events reassembles emission order across the cursor.
func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4, func() sim.Time { return 0 })
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: sim.Time(i), A: uint64(i), Kind: EvBankActivate})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Emitted() != 10 || tr.Dropped() != 6 {
		t.Errorf("Emitted/Dropped = %d/%d, want 10/6", tr.Emitted(), tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := uint64(6 + i); e.A != want {
			t.Errorf("Events()[%d].A = %d, want %d (oldest-first order)", i, e.A, want)
		}
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].A != 8 || last[1].A != 9 {
		t.Errorf("Last(2) = %+v, want events 8,9", last)
	}
}

// TestRingPartialFill checks order before the ring ever wraps.
func TestRingPartialFill(t *testing.T) {
	tr := NewTracer(8, func() sim.Time { return 0 })
	for i := 0; i < 3; i++ {
		tr.Emit(Event{A: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Len = %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.A != uint64(i) {
			t.Errorf("Events()[%d].A = %d, want %d", i, e.A, i)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
}

// TestNilTracer checks the disabled fast path end to end.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	tr.Span(EvChannelBusy, 0, 0, 1, 0, 0)
	tr.Instant(EvLateMerge, 0, 0, 0)
	tr.InstantAt(EvBankActivate, 0, 5, 0, 0)
	if tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reported activity")
	}
	if tr.Events() != nil {
		t.Error("nil tracer Events() non-nil")
	}
}

// TestInstantClock checks Instant stamps the simulated now and
// InstantAt an explicit time.
func TestInstantClock(t *testing.T) {
	now := sim.Time(42)
	tr := NewTracer(4, func() sim.Time { return now })
	tr.Instant(EvLateMerge, 0, 1, 0)
	now = 99
	tr.Instant(EvLateMerge, 0, 2, 0)
	tr.InstantAt(EvLateMerge, 0, 7, 3, 0)
	evs := tr.Events()
	if evs[0].At != 42 || evs[1].At != 99 || evs[2].At != 7 {
		t.Errorf("timestamps = %d,%d,%d, want 42,99,7", evs[0].At, evs[1].At, evs[2].At)
	}
}

// TestKindNamesRoundTrip checks every kind has a distinct name that
// KindByName resolves back.
func TestKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v, want %v,true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted a foreign name")
	}
}
