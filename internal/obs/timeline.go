package obs

import (
	"encoding/json"
	"io"
	"sort"

	"memsim/internal/sim"
)

// Timeline records periodic snapshots of the registry's values over
// simulated time, turning end-of-run aggregates into trajectories:
// prefetch accuracy settling after warmup, queue depth under a
// bandwidth burst, row-hit rate as a working set turns over.
//
// Sampling is driven by the event loop's coarse stride (see
// sim.Scheduler.RunWhileSampled): MaybeSample is cheap enough to call
// every few thousand events, and records only when the configured
// interval has elapsed, so samples land at the first event boundary
// after each interval — deterministic, because event order is.
type Timeline struct {
	reg     *Registry
	every   sim.Time
	next    sim.Time
	samples []Sample
}

// Sample is one timeline point: every registry series at one instant.
type Sample struct {
	// At is the simulated time of the snapshot in picoseconds.
	At sim.Time `json:"at_ps"`
	// Values maps series name (with rendered labels) to value;
	// histograms appear as their _count and _sum series.
	Values map[string]float64 `json:"values"`
}

// NewTimeline samples reg every interval of simulated time.
func NewTimeline(reg *Registry, every sim.Time) *Timeline {
	return &Timeline{reg: reg, every: every, next: every}
}

// MaybeSample records a snapshot if the sampling interval has elapsed,
// reporting whether it did. Nil-safe.
func (t *Timeline) MaybeSample(now sim.Time) bool {
	if t == nil || now < t.next {
		return false
	}
	t.ForceSample(now)
	return true
}

// ForceSample records a snapshot unconditionally (run boundaries,
// checkpoint flushes) and re-arms the interval from now.
func (t *Timeline) ForceSample(now sim.Time) {
	if t == nil {
		return
	}
	t.samples = append(t.samples, Sample{At: now, Values: t.reg.Values()})
	t.next = now + t.every
}

// Samples returns the recorded points, oldest first.
func (t *Timeline) Samples() []Sample {
	if t == nil {
		return nil
	}
	return t.samples
}

// Deltas returns per-interval differences between consecutive samples
// (the first sample differenced against zero). For counter series
// this is the event rate per interval; gauge deltas are net movement.
func (t *Timeline) Deltas() []Sample {
	if t == nil {
		return nil
	}
	out := make([]Sample, len(t.samples))
	prev := map[string]float64{}
	for i, s := range t.samples {
		d := make(map[string]float64, len(s.Values))
		names := make([]string, 0, len(s.Values))
		for name := range s.Values {
			names = append(names, name)
		}
		// Order does not matter for building d, but deterministic
		// iteration keeps this loop honest under the simdeterminism
		// analyzer and costs nothing at sample granularity.
		sort.Strings(names)
		for _, name := range names {
			d[name] = s.Values[name] - prev[name]
		}
		out[i] = Sample{At: s.At, Values: d}
		prev = s.Values
	}
	return out
}

// timelineFile is the JSON layout of WriteJSON.
type timelineFile struct {
	IntervalPs sim.Time `json:"interval_ps"`
	Samples    []Sample `json:"samples"`
}

// WriteJSON emits the timeline as JSON. encoding/json sorts map keys,
// so output is byte-deterministic.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if t == nil {
		return enc.Encode(timelineFile{})
	}
	return enc.Encode(timelineFile{IntervalPs: t.every, Samples: t.samples})
}

// MetricSnapshot is one series in a registry JSON snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Histogram payload.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Snapshot renders every series sorted by (name, labels).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	ms := r.sorted()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Help: m.help}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		if m.kind == kindHistogram {
			s.Count = m.hist.n
			s.Sum = m.hist.sum
			s.Bounds, s.Buckets = m.hist.Buckets()
		} else {
			s.Value = m.value()
		}
		out = append(out, s)
	}
	return out
}

// snapshotFile is the JSON layout of WriteJSON.
type snapshotFile struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// WriteJSON emits the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snapshotFile{Metrics: r.Snapshot()})
}
