package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"memsim/internal/sim"
)

// TestTimelineSampling checks interval gating: MaybeSample records
// only once the interval has elapsed and re-arms from the sample time.
func TestTimelineSampling(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memsim_test_ticks", "t")
	tl := NewTimeline(r, 100)
	if tl.MaybeSample(50) {
		t.Error("sampled before the first interval")
	}
	c.Inc()
	if !tl.MaybeSample(120) {
		t.Error("did not sample after the interval elapsed")
	}
	if tl.MaybeSample(180) {
		t.Error("resampled before the re-armed interval (next should be 220)")
	}
	c.Inc()
	tl.ForceSample(200)
	ss := tl.Samples()
	if len(ss) != 2 || ss[0].At != 120 || ss[1].At != 200 {
		t.Fatalf("samples = %+v, want at 120 and 200", ss)
	}
	if ss[0].Values["memsim_test_ticks"] != 1 || ss[1].Values["memsim_test_ticks"] != 2 {
		t.Errorf("sampled values = %v, %v", ss[0].Values, ss[1].Values)
	}
	ds := tl.Deltas()
	if ds[0].Values["memsim_test_ticks"] != 1 || ds[1].Values["memsim_test_ticks"] != 1 {
		t.Errorf("deltas = %v, %v, want 1 per interval", ds[0].Values, ds[1].Values)
	}
}

// TestNilTimeline checks the disabled path.
func TestNilTimeline(t *testing.T) {
	var tl *Timeline
	if tl.MaybeSample(10) {
		t.Error("nil timeline sampled")
	}
	tl.ForceSample(10)
	if tl.Samples() != nil || tl.Deltas() != nil {
		t.Error("nil timeline returned samples")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		IntervalPs sim.Time `json:"interval_ps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil timeline JSON does not parse: %v", err)
	}
}
