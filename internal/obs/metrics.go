package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one metric dimension, e.g. {ctrl 0} or {class demand}.
// Labels distinguish instances of the same metric name (one counter
// per channel group, per access class, per cache level).
type Label struct {
	Key, Value string
}

// metricKind discriminates the registry's instrument types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// Counter is a monotonically increasing event count. The zero value is
// usable; a nil Counter absorbs updates, so components keep unguarded
// pointers that are simply nil when metrics are off.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that can move both ways (queue
// depth, open banks). Nil-safe like Counter.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v with bounds[i-1] < v <= bounds[i] (Prometheus "le"
// semantics — a value equal to an upper bound lands in that bucket),
// and counts[len(bounds)] holds everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

// Observe records one value. Nil-safe: one branch when the histogram
// is disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.n++
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets returns the upper bounds and per-bucket (non-cumulative)
// counts; the final count has no bound (+Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// metric is one registry entry. Exactly one of counter, gauge, fn, or
// hist is set; fn-backed entries read their value lazily at export
// time so layers can expose existing Stats fields without touching
// their hot paths.
type metric struct {
	name   string
	help   string
	labels []Label
	lstr   string // rendered label string, the dedup key suffix
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// value reads the current scalar value (counter and gauge kinds only).
func (m *metric) value() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.v)
	case m.gauge != nil:
		return m.gauge.v
	case m.fn != nil:
		return m.fn()
	}
	return 0
}

// Registry holds a run's metrics. Registration happens once at system
// construction; the event loop then only touches the returned
// Counter/Gauge/Histogram handles. Export iterates the registration
// slice in sorted order, never a map, so output is deterministic.
type Registry struct {
	metrics []*metric
	index   map[string]*metric // name+labels -> entry, for dup detection
	helps   map[string]string  // name -> help, for consistency checks
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric), helps: make(map[string]string)}
}

// renderLabels formats labels sorted by key as {k="v",...}; empty for
// no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// validName is the Prometheus metric/label identifier constraint.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register adds an entry, panicking on misuse: registration happens at
// wiring time with literal names, so a bad name, duplicate series, or
// kind/help mismatch is a programmer error, not an operational one.
func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	for _, l := range m.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label key %q", m.name, l.Key))
		}
	}
	m.lstr = renderLabels(m.labels)
	key := m.name + m.lstr
	if _, dup := r.index[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric series %s", key))
	}
	if prev, ok := r.helps[m.name]; ok && prev != m.help {
		panic(fmt.Sprintf("obs: metric %s registered with conflicting help strings", m.name))
	}
	for _, prev := range r.metrics {
		if prev.name == m.name && prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s registered as both %v and %v", m.name, prev.kind, m.kind))
		}
	}
	r.helps[m.name] = m.help
	r.index[key] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter series. A nil registry
// returns a nil (absorbing) handle, so callers wire unconditionally.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, gauge: g})
	return g
}

// CounterFunc registers a counter series whose value is read from fn
// at export time. This is how layers expose counters they already
// keep in their Stats structs without double-counting on hot paths.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge series read from fn at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, fn: fn})
}

// Histogram registers a histogram series over the given ascending
// upper bounds and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending at %v", name, bounds[i]))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, hist: h})
	return h
}

// sorted returns the entries ordered by (name, labels) for export.
func (r *Registry) sorted() []*metric {
	ms := append([]*metric(nil), r.metrics...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].lstr < ms[j].lstr
	})
	return ms
}

// fmtFloat renders a value the way Prometheus text exposition expects:
// shortest representation that round-trips.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelsWith re-renders a label set with one extra pair (the
// histogram "le" label).
func labelsWith(labels []Label, extra Label) string {
	return renderLabels(append(append([]Label(nil), labels...), extra))
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric name, series
// sorted by name then labels, histograms expanded into cumulative
// _bucket/_sum/_count series. Output is byte-deterministic for a given
// registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastName := ""
	for _, m := range r.sorted() {
		if m.name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		if m.kind != kindHistogram {
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.lstr, fmtFloat(m.value()))
			continue
		}
		h := m.hist
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name,
				labelsWith(m.labels, Label{"le", fmtFloat(bound)}), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, labelsWith(m.labels, Label{"le", "+Inf"}), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.lstr, fmtFloat(h.sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.lstr, h.n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Values flattens the registry into series-name -> value. Histograms
// contribute _count and _sum entries. The timeline samples this, and
// checkpoint manifests carry deltas of it.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	vs := make(map[string]float64, len(r.metrics))
	for _, m := range r.metrics {
		if m.kind == kindHistogram {
			vs[m.name+"_count"+m.lstr] = float64(m.hist.n)
			vs[m.name+"_sum"+m.lstr] = m.hist.sum
			continue
		}
		vs[m.name+m.lstr] = m.value()
	}
	return vs
}
