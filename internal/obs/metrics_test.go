package obs

import (
	"strings"
	"testing"
)

// TestNilInstruments checks the disabled fast path: every instrument
// method on a nil receiver is a no-op, never a panic.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count/sum = %d/%v", h.Count(), h.Sum())
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", []float64{1}) != nil {
		t.Error("nil registry returned live handles")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if r.Values() != nil {
		t.Error("nil registry Values() non-nil")
	}
}

// TestHistogramBucketBoundaries pins the "le" bucket semantics: an
// observation equal to an upper bound lands in that bucket, the next
// representable value above it in the following one.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("memsim_test_hist", "t", []float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // v <= 1
		{1.0001, 1}, {2, 1}, // 1 < v <= 2
		{2.0001, 2}, {4, 2}, // 2 < v <= 4
		{4.0001, 3}, {1e9, 3}, // overflow bucket
	}
	for _, c := range cases {
		_, before := h.Buckets()
		h.Observe(c.v)
		_, after := h.Buckets()
		for i := range after {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if after[i] != want {
				t.Errorf("Observe(%v): bucket %d = %d, want %d", c.v, i, after[i], want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
}

// TestHistogramPrometheusCumulative checks the exposition's cumulative
// bucket expansion against a hand-computed distribution.
func TestHistogramPrometheusCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("memsim_test_lat", "Latency.", []float64{10, 20})
	for _, v := range []float64{5, 10, 15, 25, 30} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP memsim_test_lat Latency.
# TYPE memsim_test_lat histogram
memsim_test_lat_bucket{le="10"} 2
memsim_test_lat_bucket{le="20"} 3
memsim_test_lat_bucket{le="+Inf"} 5
memsim_test_lat_sum 85
memsim_test_lat_count 5
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPrometheusOrdering checks that series sort by (name, labels) and
// HELP/TYPE headers appear once per name.
func TestPrometheusOrdering(t *testing.T) {
	r := NewRegistry()
	// Registered out of order on purpose.
	r.Counter("memsim_test_b", "B.", Label{"ch", "1"}).Add(2)
	r.Gauge("memsim_test_a", "A.").Set(9)
	r.Counter("memsim_test_b", "B.", Label{"ch", "0"}).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP memsim_test_a A.
# TYPE memsim_test_a gauge
memsim_test_a 9
# HELP memsim_test_b B.
# TYPE memsim_test_b counter
memsim_test_b{ch="0"} 1
memsim_test_b{ch="1"} 2
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestRegistryMisuse checks that wiring errors fail loudly at
// registration time.
func TestRegistryMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("memsim_ok", "x", Label{"k", "v"})
	expectPanic("duplicate series", func() { r.Counter("memsim_ok", "x", Label{"k", "v"}) })
	expectPanic("kind conflict", func() { r.Gauge("memsim_ok", "x") })
	expectPanic("help conflict", func() { r.Counter("memsim_ok", "y", Label{"k", "w"}) })
	expectPanic("invalid name", func() { r.Counter("0bad name", "x") })
	expectPanic("invalid label key", func() { r.Counter("memsim_ok2", "x", Label{"bad key", "v"}) })
	expectPanic("empty bounds", func() { r.Histogram("memsim_h", "x", nil) })
	expectPanic("unsorted bounds", func() { r.Histogram("memsim_h", "x", []float64{2, 1}) })
}

// TestValuesFlattening checks the timeline/checkpoint view of the
// registry: scalars by series name, histograms as _count/_sum.
func TestValuesFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("memsim_test_c", "c", Label{"ch", "0"}).Add(4)
	h := r.Histogram("memsim_test_h", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	vs := r.Values()
	want := map[string]float64{
		`memsim_test_c{ch="0"}`: 4,
		"memsim_test_h_count":   2,
		"memsim_test_h_sum":     3.5,
	}
	for k, v := range want {
		if vs[k] != v {
			t.Errorf("Values[%q] = %v, want %v", k, vs[k], v)
		}
	}
	if len(vs) != len(want) {
		t.Errorf("Values has %d series, want %d", len(vs), len(want))
	}
}
