package trace

import (
	"testing"
	"testing/quick"
)

func TestOpInstructions(t *testing.T) {
	if got := (Op{NonMem: 7}).Instructions(); got != 8 {
		t.Fatalf("Instructions = %d, want 8", got)
	}
	if got := (Op{}).Instructions(); got != 1 {
		t.Fatalf("bare op Instructions = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Load: "load", Store: "store", SWPrefetch: "swprefetch"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSlice(t *testing.T) {
	ops := []Op{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	s := NewSlice(ops)
	for i := range ops {
		op, ok := s.Next()
		if !ok || op.Addr != ops[i].Addr {
			t.Fatalf("Next %d = %+v, %v", i, op, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted slice returned an op")
	}
	s.Reset()
	if op, ok := s.Next(); !ok || op.Addr != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestRepeat(t *testing.T) {
	r, err := NewRepeat([]Op{{Addr: 1}, {Addr: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 1, 2, 1}
	for i, w := range want {
		op, ok := r.Next()
		if !ok || op.Addr != w {
			t.Fatalf("Repeat %d = %+v,%v, want addr %d", i, op, ok, w)
		}
	}
}

func TestRepeatEmptyErrors(t *testing.T) {
	if _, err := NewRepeat(nil); err == nil {
		t.Fatal("NewRepeat(nil) did not error")
	}
}

func TestLimit(t *testing.T) {
	r, err := NewRepeat([]Op{{Addr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l := &Limit{G: r, N: 3}
	n := 0
	for {
		if _, ok := l.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("Limit yielded %d ops, want 3", n)
	}
}

// Property: a Slice yields exactly its ops in order, once.
func TestPropertySliceFaithful(t *testing.T) {
	f := func(addrs []uint32) bool {
		var ops []Op
		for _, a := range addrs {
			ops = append(ops, Op{Addr: uint64(a)})
		}
		s := NewSlice(ops)
		for i := 0; ; i++ {
			op, ok := s.Next()
			if !ok {
				return i == len(ops)
			}
			if i >= len(ops) || op.Addr != ops[i].Addr {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
