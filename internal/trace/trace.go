// Package trace defines the instruction-stream representation consumed
// by the core model: a sequence of memory operations, each preceded by
// a count of non-memory instructions.
//
// This compressed form carries exactly the information the memory-
// system study needs from a program: where the memory references go,
// how much computation separates them, and which loads depend on the
// previous load (pointer chasing), which bounds memory-level
// parallelism.
package trace

import "fmt"

// Kind classifies a memory operation.
type Kind uint8

// Memory operation kinds.
const (
	// Load blocks the consuming instruction until data returns.
	Load Kind = iota
	// Store retires through the store buffer without stalling.
	Store
	// SWPrefetch is a software prefetch instruction: it occupies an
	// issue slot and may trigger a fill, but nothing waits for it
	// (Section 4.7).
	SWPrefetch
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case SWPrefetch:
		return "swprefetch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one memory operation and the non-memory instructions preceding
// it. An Op therefore represents NonMem+1 retired instructions.
type Op struct {
	// NonMem is the number of non-memory instructions retired before
	// this operation.
	NonMem int
	// Addr is the physical address referenced.
	Addr uint64
	// Kind classifies the operation.
	Kind Kind
	// DependsOnPrev marks a load whose address depends on the data of
	// the most recent preceding load: it cannot issue until that load
	// completes. Chains of dependent loads serialize their misses.
	DependsOnPrev bool
}

// Instructions reports how many retired instructions the op represents.
func (o Op) Instructions() uint64 { return uint64(o.NonMem) + 1 }

// Generator produces an instruction stream. Implementations must be
// deterministic for a given construction so simulations are repeatable.
type Generator interface {
	// Next returns the next operation. ok is false when the stream is
	// exhausted; infinite generators never return false.
	Next() (op Op, ok bool)
}

// Slice replays a fixed sequence of operations. It is primarily a test
// helper and a target for trace capture tools.
type Slice struct {
	Ops []Op
	pos int
}

// NewSlice returns a generator replaying ops.
func NewSlice(ops []Op) *Slice { return &Slice{Ops: ops} }

// Next implements Generator.
func (s *Slice) Next() (Op, bool) {
	if s.pos >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// Reset rewinds the stream to the beginning.
func (s *Slice) Reset() { s.pos = 0 }

// Repeat cycles through a fixed sequence forever.
type Repeat struct {
	Ops []Op
	pos int
}

// NewRepeat returns a generator cycling over ops endlessly. An empty
// sequence is an error: there is nothing to cycle over and Next could
// never satisfy the Generator contract.
func NewRepeat(ops []Op) (*Repeat, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace: NewRepeat with no ops")
	}
	return &Repeat{Ops: ops}, nil
}

// Next implements Generator.
func (r *Repeat) Next() (Op, bool) {
	op := r.Ops[r.pos]
	r.pos = (r.pos + 1) % len(r.Ops)
	return op, true
}

// Limit truncates a generator after n operations (not instructions).
type Limit struct {
	G Generator
	N uint64
}

// Next implements Generator.
func (l *Limit) Next() (Op, bool) {
	if l.N == 0 {
		return Op{}, false
	}
	l.N--
	return l.G.Next()
}
