package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, ops []Op) []Op {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteFile(&buf, NewSlice(ops), uint64(len(ops))+10)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(ops)) {
		t.Fatalf("wrote %d ops, want %d", n, len(ops))
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Op
	for {
		op, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, op)
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	ops := []Op{
		{NonMem: 3, Addr: 0x10000, Kind: Load},
		{NonMem: 0, Addr: 0x0fff0, Kind: Store},               // backward delta
		{NonMem: 200, Addr: 0x7fffffffffff, Kind: SWPrefetch}, // big jump
		{NonMem: 1, Addr: 0x10040, Kind: Load, DependsOnPrev: true},
	}
	got := roundTrip(t, ops)
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestFileTruncatesAtN(t *testing.T) {
	var buf bytes.Buffer
	g, err := NewRepeat([]Op{{Addr: 64}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := WriteFile(&buf, g, 5)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	r, _ := NewFileReader(&buf)
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != 5 {
		t.Fatalf("decoded %d, want 5", count)
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, err := NewFileReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	WriteFile(&buf, NewSlice([]Op{{NonMem: 5, Addr: 0x12345678, Kind: Load}}), 1)
	raw := buf.Bytes()[:buf.Len()-2] // chop mid-record
	r, err := NewFileReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated record decoded without error")
	}
}

func TestFileEmptyTrace(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Fatalf("decoded %d ops from empty trace", len(got))
	}
}

// Property: round-tripping preserves any operation sequence exactly.
func TestPropertyFileRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		var ops []Op
		for _, r := range raw {
			ops = append(ops, Op{
				NonMem:        int(r % 1024),
				Addr:          r >> 3,
				Kind:          Kind(r % 3),
				DependsOnPrev: r%5 == 0,
			})
		}
		var buf bytes.Buffer
		if _, err := WriteFile(&buf, NewSlice(ops), uint64(len(ops))); err != nil {
			return false
		}
		rd, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; ; i++ {
			op, ok := rd.Next()
			if !ok {
				return i == len(ops) && rd.Err() == nil
			}
			if i >= len(ops) || op != ops[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: streaming traces compress well (delta coding): sequential
// addresses cost only a few bytes per record.
func TestFileCompactness(t *testing.T) {
	var ops []Op
	for i := 0; i < 1000; i++ {
		ops = append(ops, Op{NonMem: 5, Addr: uint64(i) * 64, Kind: Load})
	}
	var buf bytes.Buffer
	WriteFile(&buf, NewSlice(ops), 1000)
	perOp := float64(buf.Len()-len(fileMagic)) / 1000
	if perOp > 5 {
		t.Fatalf("%.1f bytes/op for a sequential trace, want <= 5", perOp)
	}
}
