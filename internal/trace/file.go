package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// File format: a magic header followed by one varint-encoded record per
// operation. Addresses are delta-encoded (zigzag) against the previous
// operation, which compresses streaming traces to a few bytes per op.
//
//	magic   "MSTRC1\n"
//	record  uvarint(nonMem) varint(addr - prevAddr) byte(kind | dep<<7)
const fileMagic = "MSTRC1\n"

// WriteFile encodes up to n operations from g into w. It returns the
// number of operations written (fewer than n only if g ends first).
func WriteFile(w io.Writer, g Generator, n uint64) (uint64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return 0, err
	}
	var buf [2*binary.MaxVarintLen64 + 1]byte
	var prev uint64
	var written uint64
	for ; written < n; written++ {
		op, ok := g.Next()
		if !ok {
			break
		}
		i := binary.PutUvarint(buf[:], uint64(op.NonMem))
		i += binary.PutVarint(buf[i:], int64(op.Addr)-int64(prev))
		prev = op.Addr
		b := byte(op.Kind)
		if op.DependsOnPrev {
			b |= 0x80
		}
		buf[i] = b
		i++
		if _, err := bw.Write(buf[:i]); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// FileReader replays a trace written by WriteFile. It implements
// Generator; decoding errors surface through Err after the stream
// ends.
type FileReader struct {
	br   *bufio.Reader
	prev uint64
	err  error
	done bool
}

// NewFileReader validates the header and returns a reader positioned
// at the first operation.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	return &FileReader{br: br}, nil
}

// Next implements Generator.
func (f *FileReader) Next() (Op, bool) {
	if f.done {
		return Op{}, false
	}
	nonMem, err := binary.ReadUvarint(f.br)
	if err != nil {
		f.finish(err)
		return Op{}, false
	}
	delta, err := binary.ReadVarint(f.br)
	if err != nil {
		f.finish(err)
		return Op{}, false
	}
	kb, err := f.br.ReadByte()
	if err != nil {
		f.finish(err)
		return Op{}, false
	}
	addr := uint64(int64(f.prev) + delta)
	f.prev = addr
	op := Op{
		NonMem:        int(nonMem),
		Addr:          addr,
		Kind:          Kind(kb & 0x7f),
		DependsOnPrev: kb&0x80 != 0,
	}
	if op.Kind > SWPrefetch {
		f.finish(fmt.Errorf("trace: invalid kind %d", op.Kind))
		return Op{}, false
	}
	return op, true
}

// finish records the stream end; a clean EOF at a record boundary is
// not an error.
func (f *FileReader) finish(err error) {
	f.done = true
	if err != io.EOF {
		f.err = err
	}
}

// Err reports the first decoding error, or nil after a clean end.
func (f *FileReader) Err() error { return f.err }
