package dram

import "memsim/internal/obs"

// RegisterMetrics exposes the device's bank state to the metrics
// registry: the active-bank count is the paper's proxy for how much
// row-buffer locality the mapping policy can exploit at any instant.
// Values are read lazily at export time, so the device's hot path is
// untouched. Nil-safe on a nil registry.
func (d *Device) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("memsim_dram_open_banks",
		"Banks currently holding an open row in their sense amps.",
		func() float64 { return float64(d.ActiveBanks()) }, labels...)
}
