package dram

import (
	"testing"
	"testing/quick"

	"memsim/internal/sim"
)

func TestPart800x40Latencies(t *testing.T) {
	// Section 2.2: "A single, contentionless dualoct access that
	// misses in the row buffer will incur 77.5 ns ... An access to a
	// precharged bank therefore requires 57.5 ns, and a page hit
	// requires only 40 ns."
	p := Part800x40
	if got, want := p.RowHitLatency(), 40*sim.Nanosecond; got != want {
		t.Errorf("row hit latency = %v, want %v", got, want)
	}
	if got, want := p.PrechargedLatency(), 57500*sim.Picosecond; got != want {
		t.Errorf("precharged latency = %v, want %v", got, want)
	}
	if got, want := p.RowMissLatency(), 77500*sim.Picosecond; got != want {
		t.Errorf("row miss latency = %v, want %v", got, want)
	}
}

func TestPartOrdering(t *testing.T) {
	// The sensitivity-study parts must be strictly ordered in speed.
	if !(Part800x34.RowMissLatency() < Part800x40.RowMissLatency() &&
		Part800x40.RowMissLatency() < Part800x50.RowMissLatency()) {
		t.Error("parts not ordered 34 < 40 < 50 in row-miss latency")
	}
	if Part800x34.RowHitLatency() != 34*sim.Nanosecond {
		t.Errorf("800-34 hit latency = %v, want 34ns", Part800x34.RowHitLatency())
	}
	if Part800x50.RowHitLatency() != 50*sim.Nanosecond {
		t.Errorf("800-50 hit latency = %v, want 50ns", Part800x50.RowHitLatency())
	}
}

func TestPartByName(t *testing.T) {
	p, err := PartByName("800-40")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "800-40" {
		t.Errorf("part name = %q", p.Name)
	}
	if _, err := PartByName("bogus"); err == nil {
		t.Error("PartByName(bogus) did not error")
	}
}

func TestGeometryConstants(t *testing.T) {
	if DeviceBytes != 32<<20 {
		t.Errorf("DeviceBytes = %d, want 32MB (256 Mbit)", DeviceBytes)
	}
	if ColumnsPerRow != 128 {
		t.Errorf("ColumnsPerRow = %d, want 128", ColumnsPerRow)
	}
}

func TestNewDeviceAllClosed(t *testing.T) {
	d := NewDevice()
	if d.NumBanks() != BanksPerDevice {
		t.Fatalf("NumBanks = %d, want %d", d.NumBanks(), BanksPerDevice)
	}
	for b := 0; b < d.NumBanks(); b++ {
		if _, open := d.OpenRow(b); open {
			t.Fatalf("bank %d open after NewDevice", b)
		}
	}
	if d.ActiveBanks() != 0 {
		t.Fatalf("ActiveBanks = %d, want 0", d.ActiveBanks())
	}
}

func TestActivateOpensRow(t *testing.T) {
	d := NewDevice()
	d.Activate(5, 100)
	if !d.IsOpen(5, 100) {
		t.Error("bank 5 not open at row 100")
	}
	if d.IsOpen(5, 101) {
		t.Error("bank 5 reported open at wrong row")
	}
	row, open := d.OpenRow(5)
	if !open || row != 100 {
		t.Errorf("OpenRow(5) = %d,%v, want 100,true", row, open)
	}
}

func TestActivateClosesNeighbors(t *testing.T) {
	// Section 2.2: "An access to bank 1 will thus flush the row
	// buffers of banks 0 and 2 if they are active, even if the previous
	// access to bank 1 involved the same row."
	d := NewDevice()
	d.Activate(0, 10)
	d.Activate(2, 20)
	d.Activate(1, 30)
	if _, open := d.OpenRow(0); open {
		t.Error("bank 0 still active after activating bank 1")
	}
	if _, open := d.OpenRow(2); open {
		t.Error("bank 2 still active after activating bank 1")
	}
	if !d.IsOpen(1, 30) {
		t.Error("bank 1 not open")
	}
}

func TestPrechargesForClosedBank(t *testing.T) {
	d := NewDevice()
	self, neighbors := d.Precharges(4, 7)
	if self || len(neighbors) != 0 {
		t.Errorf("closed bank Precharges = %v,%v, want false,nil", self, neighbors)
	}
}

func TestPrechargesRowHitNeedsNothing(t *testing.T) {
	d := NewDevice()
	d.Activate(4, 7)
	self, neighbors := d.Precharges(4, 7)
	if self || len(neighbors) != 0 {
		t.Errorf("row-hit Precharges = %v,%v, want false,nil", self, neighbors)
	}
}

func TestPrechargesRowMiss(t *testing.T) {
	d := NewDevice()
	d.Activate(4, 7)
	self, neighbors := d.Precharges(4, 8)
	if !self {
		t.Error("row miss should require self precharge")
	}
	if len(neighbors) != 0 {
		t.Errorf("unexpected neighbor precharges %v", neighbors)
	}
}

func TestPrechargesNeighborConflict(t *testing.T) {
	d := NewDevice()
	d.Activate(3, 7)
	self, neighbors := d.Precharges(4, 9)
	if self {
		t.Error("closed bank should not need self precharge")
	}
	if len(neighbors) != 1 || neighbors[0] != 3 {
		t.Errorf("neighbors = %v, want [3]", neighbors)
	}
}

func TestPrechargesBothNeighbors(t *testing.T) {
	d := NewDevice()
	d.Activate(3, 1)
	// Activating bank 5 closes bank 4; reopen 3 is unaffected.
	d.Activate(5, 2)
	if !d.IsOpen(3, 1) || !d.IsOpen(5, 2) {
		t.Fatal("setup failed: banks 3 and 5 should be open")
	}
	self, neighbors := d.Precharges(4, 0)
	if self {
		t.Error("self precharge not needed for closed bank 4")
	}
	if len(neighbors) != 2 {
		t.Fatalf("neighbors = %v, want both 3 and 5", neighbors)
	}
}

func TestEdgeBanks(t *testing.T) {
	d := NewDevice()
	d.Activate(1, 5)
	_, neighbors := d.Precharges(0, 3)
	if len(neighbors) != 1 || neighbors[0] != 1 {
		t.Errorf("bank 0 neighbors = %v, want [1]", neighbors)
	}
	d.PrechargeAll()
	d.Activate(BanksPerDevice-2, 5)
	_, neighbors = d.Precharges(BanksPerDevice-1, 3)
	if len(neighbors) != 1 || neighbors[0] != BanksPerDevice-2 {
		t.Errorf("top bank neighbors = %v", neighbors)
	}
}

func TestPrecharge(t *testing.T) {
	d := NewDevice()
	d.Activate(9, 42)
	d.Precharge(9)
	if _, open := d.OpenRow(9); open {
		t.Error("bank open after Precharge")
	}
}

func TestPrechargeAll(t *testing.T) {
	d := NewDevice()
	d.Activate(0, 1)
	d.Activate(10, 2)
	d.Activate(20, 3)
	d.PrechargeAll()
	if d.ActiveBanks() != 0 {
		t.Errorf("ActiveBanks = %d after PrechargeAll", d.ActiveBanks())
	}
}

func TestActivatePanicsOnBadRow(t *testing.T) {
	d := NewDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("Activate with out-of-range row did not panic")
		}
	}()
	d.Activate(0, RowsPerBank)
}

// Property: no two adjacent banks are ever simultaneously active, no
// matter the activation sequence (the shared sense-amp invariant).
func TestPropertyAdjacentExclusion(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDevice()
		for _, op := range ops {
			bank := int(op) % BanksPerDevice
			row := (int(op) / BanksPerDevice) % RowsPerBank
			d.Activate(bank, row)
			for b := 0; b < BanksPerDevice-1; b++ {
				_, openA := d.OpenRow(b)
				_, openB := d.OpenRow(b + 1)
				if openA && openB {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after Activate(b, r), an immediate access to (b, r) is a
// row hit requiring no precharges.
func TestPropertyActivateThenHit(t *testing.T) {
	f := func(bank uint8, row uint16) bool {
		b := int(bank) % BanksPerDevice
		r := int(row) % RowsPerBank
		d := NewDevice()
		d.Activate(b, r)
		self, neighbors := d.Precharges(b, r)
		return d.IsOpen(b, r) && !self && len(neighbors) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
