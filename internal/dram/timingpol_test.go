package dram

import (
	"testing"

	"memsim/internal/sim"
)

func TestTieredTiming(t *testing.T) {
	p := NewTieredTiming(0)
	if p.NearRows != DefaultNearRows {
		t.Fatalf("default NearRows = %d, want %d", p.NearRows, DefaultNearRows)
	}
	flat := sim.Time(1000)
	if got := p.ActivateLatency(0, 0, 0, flat); got != flat/2 {
		t.Fatalf("near-segment activate = %v, want %v", got, flat/2)
	}
	if got := p.ActivateLatency(0, 0, p.NearRows, flat); got != flat {
		t.Fatalf("far-segment activate = %v, want %v", got, flat)
	}
	fast, slow := p.Counters()
	if fast != 1 || slow != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", fast, slow)
	}
}

func TestReuseTimingHitAndEvict(t *testing.T) {
	p := NewReuseTiming(2)
	flat := sim.Time(1000)

	// First touch of any row is a miss at the flat latency.
	if got := p.ActivateLatency(0, 0, 7, flat); got != flat {
		t.Fatalf("cold activate = %v, want %v", got, flat)
	}
	// Re-activating the tracked row takes the fast path.
	if got := p.ActivateLatency(0, 0, 7, flat); got != flat*3/5 {
		t.Fatalf("reuse activate = %v, want %v", got, flat*3/5)
	}
	// Same row index in a different bank is a distinct entry.
	if got := p.ActivateLatency(0, 1, 7, flat); got != flat {
		t.Fatalf("cross-bank activate = %v, want %v (miss)", got, flat)
	}

	// Table is full (rows {0,0,7} and {0,1,7}); a third row evicts the
	// LRU victim — the bank-0 entry, whose last touch is oldest.
	if got := p.ActivateLatency(0, 2, 7, flat); got != flat {
		t.Fatalf("filling activate = %v, want %v", got, flat)
	}
	// The bank-1 entry survived the eviction.
	if got := p.ActivateLatency(0, 1, 7, flat); got != flat*3/5 {
		t.Fatalf("surviving entry activate = %v, want %v (hit)", got, flat*3/5)
	}
	// The evicted bank-0 entry is gone.
	if got := p.ActivateLatency(0, 0, 7, flat); got != flat {
		t.Fatalf("evicted row re-activate = %v, want %v (miss)", got, flat)
	}

	fast, slow := p.Counters()
	if fast != 2 || slow != 4 {
		t.Fatalf("counters = %d/%d, want 2/4", fast, slow)
	}
}

func TestReuseTimingDefaultCapacity(t *testing.T) {
	p := NewReuseTiming(0)
	if p.cap != DefaultReuseEntries {
		t.Fatalf("default capacity = %d, want %d", p.cap, DefaultReuseEntries)
	}
}
