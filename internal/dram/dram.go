// Package dram models Direct Rambus DRAM (DRDRAM) devices: their
// geometry, command timing, and per-bank row-buffer state, including
// the shared sense-amplifier organization that forbids adjacent banks
// from being active simultaneously.
//
// The model follows the 256-Mbit device described in the paper: 32
// banks of 1 MB, each with 512 rows of 2 KB; the smallest addressable
// unit is a 16-byte dualoct. A full access issues up to three commands:
// precharge (PRER) on the row bus, activate (ACT) on the row bus, and
// read (RD) or write (WR) on the column bus.
package dram

import (
	"fmt"

	"memsim/internal/sim"
)

// Standard 256-Mbit DRDRAM geometry constants.
const (
	BanksPerDevice = 32
	RowsPerBank    = 512
	RowBytes       = 2048 // per physical channel
	DualoctBytes   = 16
	ColumnsPerRow  = RowBytes / DualoctBytes // 128
	DeviceBytes    = BanksPerDevice * RowsPerBank * RowBytes
)

// Timing holds the command latencies of a DRDRAM part. All values are
// simulated durations.
//
// A row-buffer hit costs CAC + Packet (RD to end of data); an access to
// a precharged bank costs ACT + CAC + Packet; a row-buffer miss costs
// PRER + ACT + CAC + Packet.
type Timing struct {
	Name   string
	Packet sim.Time // duration of one command or data packet on a bus
	PRER   sim.Time // precharge command latency (bank precharged after this)
	ACT    sim.Time // activate latency (row open in sense amps after this)
	CAC    sim.Time // RD/WR command to start of data transfer
}

// RowHitLatency is the contentionless latency of an access that hits in
// the row buffer.
func (t Timing) RowHitLatency() sim.Time { return t.CAC + t.Packet }

// PrechargedLatency is the contentionless latency of an access to a
// precharged (closed) bank.
func (t Timing) PrechargedLatency() sim.Time { return t.ACT + t.CAC + t.Packet }

// RowMissLatency is the contentionless latency of an access that misses
// in the row buffer (open at a different row).
func (t Timing) RowMissLatency() sim.Time { return t.PRER + t.ACT + t.CAC + t.Packet }

// Published and hypothetical DRDRAM parts used in the paper's
// sensitivity study (Section 4.6). Part800x40 is the 800-40 256-Mbit
// part simulated throughout the paper: a contentionless dualoct access
// that misses in the row buffer takes 77.5 ns, an access to a
// precharged bank 57.5 ns, and a page hit 40 ns.
var (
	Part800x40 = Timing{
		Name:   "800-40",
		Packet: 10 * sim.Nanosecond,
		PRER:   20 * sim.Nanosecond,
		ACT:    17500 * sim.Picosecond,
		CAC:    30 * sim.Nanosecond,
	}

	// Part800x50 approximates the published 800-50 part: same channel
	// rate, slower core. The paper does not reprint its parameters; we
	// scale the access path to a 50 ns page hit.
	Part800x50 = Timing{
		Name:   "800-50",
		Packet: 10 * sim.Nanosecond,
		PRER:   25 * sim.Nanosecond,
		ACT:    22500 * sim.Picosecond,
		CAC:    40 * sim.Nanosecond,
	}

	// Part800x34 is the paper's hypothetical fast part, obtained from
	// published 45-600 latencies without adjusting cycle time: a 34 ns
	// page hit.
	Part800x34 = Timing{
		Name:   "800-34",
		Packet: 10 * sim.Nanosecond,
		PRER:   17 * sim.Nanosecond,
		ACT:    15 * sim.Nanosecond,
		CAC:    24 * sim.Nanosecond,
	}
)

// Parts lists the available timing parts by name.
var Parts = map[string]Timing{
	Part800x40.Name: Part800x40,
	Part800x50.Name: Part800x50,
	Part800x34.Name: Part800x34,
}

// PartByName returns the named timing part.
func PartByName(name string) (Timing, error) {
	t, ok := Parts[name]
	if !ok {
		return Timing{}, fmt.Errorf("dram: unknown part %q", name)
	}
	return t, nil
}

const closedRow = -1

// Device models the bank and row-buffer state of one DRDRAM device (or
// of a lock-step gang of devices, one per physical channel, when
// channels are simply interleaved into a single logical channel).
//
// Row buffers are split in half and shared between adjacent banks
// (bank n's upper half is bank n+1's lower half), so only one of a
// pair of adjacent banks may be active at a time. Activating a bank
// implicitly requires its active neighbors to be precharged first.
type Device struct {
	banks []int32 // open row per bank, or closedRow
}

// NewDevice returns a device with all banks precharged.
func NewDevice() *Device {
	d := &Device{banks: make([]int32, BanksPerDevice)}
	for i := range d.banks {
		d.banks[i] = closedRow
	}
	return d
}

// NumBanks reports the number of banks.
func (d *Device) NumBanks() int { return len(d.banks) }

// OpenRow reports the row currently held in the bank's sense amps, and
// whether the bank is active.
func (d *Device) OpenRow(bank int) (row int, open bool) {
	r := d.banks[bank]
	return int(r), r != closedRow
}

// IsOpen reports whether the bank currently holds row in its row buffer.
func (d *Device) IsOpen(bank, row int) bool {
	return d.banks[bank] == int32(row)
}

// Precharges reports which precharge operations are required before
// activating row in bank: the bank itself if it is open at another row,
// and any active adjacent bank (shared sense amps). If the bank is
// already open at the requested row, no operations are required.
func (d *Device) Precharges(bank, row int) (self bool, neighbors []int) {
	if d.IsOpen(bank, row) {
		return false, nil
	}
	self = d.banks[bank] != closedRow
	if bank > 0 && d.banks[bank-1] != closedRow {
		neighbors = append(neighbors, bank-1)
	}
	if bank < len(d.banks)-1 && d.banks[bank+1] != closedRow {
		neighbors = append(neighbors, bank+1)
	}
	return self, neighbors
}

// Activate opens row in bank, precharging the bank and its active
// neighbors as a side effect (the caller is responsible for charging
// the corresponding command latencies).
func (d *Device) Activate(bank, row int) {
	if row < 0 || row >= RowsPerBank {
		panic(fmt.Sprintf("dram: activate row %d out of range", row))
	}
	if bank > 0 {
		d.banks[bank-1] = closedRow
	}
	if bank < len(d.banks)-1 {
		d.banks[bank+1] = closedRow
	}
	d.banks[bank] = int32(row)
}

// Precharge closes the bank.
func (d *Device) Precharge(bank int) { d.banks[bank] = closedRow }

// PrechargeAll closes every bank.
func (d *Device) PrechargeAll() {
	for i := range d.banks {
		d.banks[i] = closedRow
	}
}

// ActiveBanks reports how many banks are currently active. Because of
// sense-amp sharing this can never exceed half the banks (rounded up).
func (d *Device) ActiveBanks() int {
	n := 0
	for _, r := range d.banks {
		if r != closedRow {
			n++
		}
	}
	return n
}
