package dram

import "memsim/internal/sim"

// TimingPolicy is the bank-timing seam: it resolves the activate
// latency of each individual row activation, which is where the
// tiered-latency and row-reuse schemes of the related work differ from
// a uniform part. Implementations register in internal/policy under a
// scheme name, which is how Config.BankTiming reaches them.
//
// The channel calls ActivateLatency exactly once per activate, in
// access order, so deterministic internal state (the row-reuse table)
// is safe; wall-clock time, randomness and map iteration are not.
// A nil TimingPolicy means the flat scheme: every activate charges the
// part's uniform ACT latency.
type TimingPolicy interface {
	// Name is the scheme name the policy registered under.
	Name() string
	// ActivateLatency returns the activate latency for opening row in
	// (device, bank); flat is the part's uniform ACT latency. Our
	// channel model folds tRCD and tRAS into this single activate
	// charge, so scheme deltas scale it directly.
	ActivateLatency(device, bank, row int, flat sim.Time) sim.Time
	// Counters reports how many activates took the fast and slow
	// paths, for the gated memsim_dram_*_activates_total metrics.
	Counters() (fast, slow uint64)
}

// DefaultNearRows is the tiered scheme's default near-segment size:
// one eighth of each bank's rows sit close to the sense amps.
const DefaultNearRows = RowsPerBank / 8

// TieredTiming models a TL-DRAM-style tiered-latency bank (Lee et
// al., HPCA 2013): each bank's bitline is segmented by isolation
// transistors into a near segment close to the sense amps and a far
// segment behind it. Near-segment rows activate in roughly half the
// time (the paper reports ~56% lower tRCD and ~47% lower tRAS); far
// rows pay the flat part latency. Row indices below NearRows are the
// near segment, matching a system that maps hot data low.
type TieredTiming struct {
	// NearRows is the number of near-segment rows per bank.
	NearRows   int
	fast, slow uint64
}

// NewTieredTiming returns the tiered scheme; nearRows <= 0 takes
// DefaultNearRows.
func NewTieredTiming(nearRows int) *TieredTiming {
	if nearRows <= 0 {
		nearRows = DefaultNearRows
	}
	return &TieredTiming{NearRows: nearRows}
}

// Name implements TimingPolicy.
func (t *TieredTiming) Name() string { return "tiered" }

// ActivateLatency implements TimingPolicy: near-segment rows activate
// in half the flat latency.
func (t *TieredTiming) ActivateLatency(_, _, row int, flat sim.Time) sim.Time {
	if row < t.NearRows {
		t.fast++
		return flat / 2
	}
	t.slow++
	return flat
}

// Counters implements TimingPolicy.
func (t *TieredTiming) Counters() (fast, slow uint64) { return t.fast, t.slow }

// DefaultReuseEntries is the row-reuse table's default capacity,
// matching the per-bank-group table sizes the ChargeCache work
// evaluates (128 entries covers its knee).
const DefaultReuseEntries = 128

// ReuseTiming models a ChargeCache-style fast path for recently
// accessed rows (Hassan et al., HPCA 2016): a row activated shortly
// after its previous activation still holds highly charged cells, so
// the activate completes early. The policy keeps the last-activated
// (device, bank, row) triples in a small LRU table; a hit charges 60%
// of the flat activate latency (the work reduces tRCD/tRAS by ~40%),
// a miss charges the flat latency and installs the row.
type ReuseTiming struct {
	entries    []reuseEntry
	cap        int
	tick       uint64
	fast, slow uint64
}

// reuseEntry is one tracked row with its LRU timestamp.
type reuseEntry struct {
	dev, bank, row int
	last           uint64
}

// NewReuseTiming returns the row-reuse scheme; entries <= 0 takes
// DefaultReuseEntries.
func NewReuseTiming(entries int) *ReuseTiming {
	if entries <= 0 {
		entries = DefaultReuseEntries
	}
	return &ReuseTiming{cap: entries}
}

// Name implements TimingPolicy.
func (t *ReuseTiming) Name() string { return "rowreuse" }

// ActivateLatency implements TimingPolicy.
func (t *ReuseTiming) ActivateLatency(dev, bank, row int, flat sim.Time) sim.Time {
	t.tick++
	for i := range t.entries {
		e := &t.entries[i]
		if e.dev == dev && e.bank == bank && e.row == row {
			e.last = t.tick
			t.fast++
			return flat * 3 / 5
		}
	}
	if len(t.entries) < t.cap {
		t.entries = append(t.entries, reuseEntry{dev, bank, row, t.tick})
	} else {
		victim := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].last < t.entries[victim].last {
				victim = i
			}
		}
		t.entries[victim] = reuseEntry{dev, bank, row, t.tick}
	}
	t.slow++
	return flat
}

// Counters implements TimingPolicy.
func (t *ReuseTiming) Counters() (fast, slow uint64) { return t.fast, t.slow }
