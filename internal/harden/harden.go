// Package harden is the simulator's robustness layer: typed,
// aggregated configuration errors, a forward-progress watchdog for the
// event loop, cross-layer invariant ("paranoid mode") violations, and
// structured diagnostic dumps attached to every failure.
//
// The package deliberately sits below the subsystem packages: it
// depends only on the simulation kernel, so cache, channel, memctrl,
// prefetch, and core can all report through it without import cycles.
// Real memory-system simulators (DRAMsim3's config checker, the
// backpressure accounting in MemorySim-style controllers) treat these
// facilities as part of the product, not the tests; memsim does the
// same so that a malformed Config or a corrupted queue surfaces as a
// structured error instead of a raw panic or a silent infinite loop.
package harden

import (
	"fmt"
	"strings"

	"memsim/internal/sim"
)

// FieldError describes one invalid configuration field. It is the unit
// of aggregation: a validation pass reports every bad field at once
// rather than stopping at the first.
type FieldError struct {
	// Field names the offending configuration field (dotted for nested
	// structures, e.g. "Prefetch.QueueDepth").
	Field string
	// Value is the rejected value.
	Value any
	// Reason explains the constraint that was violated.
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("%s = %v: %s", e.Field, e.Value, e.Reason)
}

// ConfigError aggregates every FieldError found in one validation
// pass. Callers can range over Fields for structured handling or use
// errors.As to detect a validation failure.
type ConfigError struct {
	Fields []*FieldError
}

// Error implements error, listing every violation.
func (e *ConfigError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invalid config (%d problem", len(e.Fields))
	if len(e.Fields) != 1 {
		b.WriteString("s")
	}
	b.WriteString(")")
	for _, f := range e.Fields {
		b.WriteString("\n  - ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the individual field errors to errors.Is/As.
func (e *ConfigError) Unwrap() []error {
	errs := make([]error, len(e.Fields))
	for i, f := range e.Fields {
		errs[i] = f
	}
	return errs
}

// Validator accumulates field errors during a validation pass. The
// zero value is ready to use.
type Validator struct {
	fields []*FieldError
}

// Reject records a violation for the named field.
func (v *Validator) Reject(field string, value any, format string, args ...any) {
	v.fields = append(v.fields, &FieldError{
		Field:  field,
		Value:  value,
		Reason: fmt.Sprintf(format, args...),
	})
}

// Check records a violation unless ok holds.
func (v *Validator) Check(ok bool, field string, value any, format string, args ...any) {
	if !ok {
		v.Reject(field, value, format, args...)
	}
}

// Pow2 requires value to be a positive power of two.
func (v *Validator) Pow2(field string, value int) {
	if value <= 0 || value&(value-1) != 0 {
		v.Reject(field, value, "must be a positive power of two")
	}
}

// Range requires lo <= value <= hi.
func (v *Validator) Range(field string, value, lo, hi int64) {
	if value < lo || value > hi {
		v.Reject(field, value, "must be in [%d, %d]", lo, hi)
	}
}

// Merge absorbs another error into the pass: a *ConfigError
// contributes its fields under the given prefix, any other error
// becomes a single field entry. A nil err is a no-op.
func (v *Validator) Merge(prefix string, err error) {
	if err == nil {
		return
	}
	if ce, ok := err.(*ConfigError); ok {
		for _, f := range ce.Fields {
			v.fields = append(v.fields, &FieldError{
				Field:  prefix + "." + f.Field,
				Value:  f.Value,
				Reason: f.Reason,
			})
		}
		return
	}
	v.Reject(prefix, nil, "%v", err)
}

// Err returns nil when no violations were recorded, else the
// aggregated *ConfigError.
func (v *Validator) Err() error {
	if len(v.fields) == 0 {
		return nil
	}
	return &ConfigError{Fields: v.fields}
}

// WatchdogError reports a run aborted because the system made no
// forward progress (no retire, no channel issue, no completion) for a
// full watchdog window.
type WatchdogError struct {
	// Now is the simulated time of the abort.
	Now sim.Time
	// WindowCycles is the configured no-progress window.
	WindowCycles int64
	// Progress is the (stagnant) progress snapshot at the abort.
	Progress Progress
	// Dump is the structured diagnostic state dump.
	Dump string
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("watchdog: no forward progress for %d cycles at %v (retired=%d issued=%d completions=%d)\n%s",
		e.WindowCycles, e.Now, e.Progress.Retired, e.Progress.Issued, e.Progress.Completions, e.Dump)
}

// InvariantError reports cross-layer accounting violations found by
// the paranoid checker.
type InvariantError struct {
	// Now is the simulated time of the failing check.
	Now sim.Time
	// Violations lists every broken invariant, in deterministic order.
	Violations []string
	// Dump is the structured diagnostic state dump.
	Dump string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant check failed at %v:\n  - %s\n%s",
		e.Now, strings.Join(e.Violations, "\n  - "), e.Dump)
}

// CorruptionError wraps an internal-bug panic (e.g. a duplicate MSHR
// fill) recovered during a run, attaching the diagnostic dump. The
// panic still indicates a bug — routing it through this type preserves
// the crash signal while giving the caller the state needed to debug
// it.
type CorruptionError struct {
	// PanicValue is the recovered panic payload.
	PanicValue any
	// Now is the simulated time of the panic.
	Now sim.Time
	// Dump is the structured diagnostic state dump.
	Dump string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("internal corruption at %v: %v\n%s", e.Now, e.PanicValue, e.Dump)
}

// Progress is a monotonic snapshot of system forward progress. Any
// strictly increasing component counts as progress.
type Progress struct {
	// Retired counts instructions retired by the core.
	Retired uint64
	// Issued counts accesses issued on the memory channels.
	Issued uint64
	// Completions counts transfer completions delivered to the
	// hierarchy (MSHR drains and prefetch fills).
	Completions uint64
}

// Watchdog detects no-forward-progress windows. Observe is called at a
// fixed cycle interval with the current progress snapshot; two
// consecutive identical snapshots mean the window passed with no
// retire, no issue, and no completion.
type Watchdog struct {
	last   Progress
	primed bool
}

// NewWatchdog returns an unprimed watchdog: the first observation only
// records a baseline.
func NewWatchdog() *Watchdog { return &Watchdog{} }

// Observe records a snapshot and reports whether the system progressed
// since the previous one. The first call always reports true.
func (w *Watchdog) Observe(p Progress) bool {
	if !w.primed {
		w.primed = true
		w.last = p
		return true
	}
	ok := p != w.last
	w.last = p
	return ok
}

// Report builds the structured diagnostic dump attached to hardening
// errors: named sections of formatted lines.
type Report struct {
	b        strings.Builder
	sections int
}

// Section starts a named section.
func (r *Report) Section(name string) {
	if r.sections > 0 {
		r.b.WriteString("\n")
	}
	r.sections++
	r.b.WriteString("=== ")
	r.b.WriteString(name)
	r.b.WriteString(" ===\n")
}

// Linef appends one formatted line to the current section.
func (r *Report) Linef(format string, args ...any) {
	fmt.Fprintf(&r.b, format, args...)
	r.b.WriteString("\n")
}

// String renders the report.
func (r *Report) String() string { return r.b.String() }
