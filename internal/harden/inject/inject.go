// Package inject is the fault-injection harness of the hardening
// layer: it deterministically perturbs a running system to prove that
// the watchdog, the paranoid invariant checker, and the routed
// internal-bug panics actually catch each corruption class.
//
// A Plan names one fault class and a trigger ordinal; the Injector
// holds the mutable countdown state for one run. Faults fire on the
// Nth event of the class's trigger domain (demand completions for the
// completion faults, demand submissions for the channel and accounting
// faults), so two runs of the same plan perturb the same request.
//
// This package perturbs the simulator's in-memory dataflow; its
// storage-side counterpart is internal/chaos, which drills the durable
// writers through the internal/vfs seam with crash-point and I/O-fault
// injection (DESIGN.md §13).
package inject

import (
	"fmt"
	"strconv"
	"strings"
)

// Class enumerates the supported corruption classes.
type Class int

// Fault classes. Each models a distinct family of real controller
// bugs, and each is caught by a different layer of the hardening
// stack (see the table-driven test in internal/core).
const (
	// None injects nothing.
	None Class = iota
	// DropCompletion suppresses every demand-completion callback from
	// the trigger point on: the MSHR entries leak, waiters never fire,
	// and the core eventually stalls. Caught by the invariant checker
	// (MSHR entry with no in-flight transfer) or the watchdog.
	DropCompletion
	// DuplicateFill delivers the triggering demand completion twice.
	// The second fill completes an already-completed MSHR — an
	// internal-bug panic routed into a CorruptionError with a dump.
	DuplicateFill
	// StuckBank freezes the DRAM bank addressed by the triggering
	// demand request: its ready time jumps to the far future, so the
	// request's data never arrives in any realistic window. Caught by
	// the invariant checker (bank ready beyond the sanity horizon) or
	// the watchdog.
	StuckBank
	// RefreshStorm simulates a runaway refresh controller from the
	// trigger point on: every channel access burns a large slice of
	// bus time, so completions recede faster than the core can chase
	// them. Caught by the invariant checker (bus free times beyond the
	// sanity horizon) or the watchdog.
	RefreshStorm
	// PhantomMSHR allocates an MSHR entry that no transfer will ever
	// complete, silently shrinking the miss capacity. Caught by the
	// invariant checker (MSHR entry with no in-flight transfer).
	PhantomMSHR

	numClasses
)

// String names the class in the spec syntax accepted by Parse.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case DropCompletion:
		return "drop-completion"
	case DuplicateFill:
		return "duplicate-fill"
	case StuckBank:
		return "stuck-bank"
	case RefreshStorm:
		return "refresh-storm"
	case PhantomMSHR:
		return "phantom-mshr"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every real fault class (excluding None).
func Classes() []Class {
	out := make([]Class, 0, int(numClasses)-1)
	for c := None + 1; c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Plan names one fault to inject. The zero Plan injects nothing.
type Plan struct {
	// Class selects the corruption class.
	Class Class
	// After is the 1-based ordinal of the trigger event (demand
	// completion or submission, depending on the class) at which the
	// fault first fires. Zero means 1: the first opportunity.
	After uint64
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if p.Class < None || p.Class >= numClasses {
		return fmt.Errorf("inject: unknown fault class %d", int(p.Class))
	}
	return nil
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool { return p.Class != None }

// String renders the plan in Parse syntax.
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	return fmt.Sprintf("%s:%d", p.Class, p.trigger())
}

func (p Plan) trigger() uint64 {
	if p.After == 0 {
		return 1
	}
	return p.After
}

// Parse reads a "class[:after]" spec, e.g. "drop-completion:10" or
// "stuck-bank". An empty spec or "none" yields the zero Plan.
func Parse(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return Plan{}, nil
	}
	name, ordinal, hasOrdinal := strings.Cut(spec, ":")
	var p Plan
	found := false
	for _, c := range Classes() {
		if c.String() == name {
			p.Class = c
			found = true
			break
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("inject: unknown fault class %q (want one of %v)", name, Classes())
	}
	if hasOrdinal {
		n, err := strconv.ParseUint(ordinal, 10, 64)
		if err != nil || n == 0 {
			return Plan{}, fmt.Errorf("inject: bad trigger ordinal %q in %q", ordinal, spec)
		}
		p.After = n
	}
	return p, nil
}

// Injector carries one run's countdown state. It is deterministic:
// given the same sequence of Tick calls it fires at the same points.
type Injector struct {
	plan  Plan
	seen  uint64
	fired uint64
}

// New returns an injector executing the plan.
func New(p Plan) *Injector { return &Injector{plan: p} }

// Plan reports the executing plan.
func (i *Injector) Plan() Plan { return i.plan }

// Fired reports how many times the fault has fired.
func (i *Injector) Fired() uint64 { return i.fired }

// Tick records one event of class c's trigger domain and reports
// whether the fault fires now. Calls for any other class return false
// without consuming the count, so a single injector can be consulted
// from every hook site.
//
// Sustained classes (DropCompletion, RefreshStorm) fire on the trigger
// event and every later one — a transient version of those faults can
// heal before detection, which would make the catch tests flaky.
// One-shot classes (DuplicateFill, StuckBank, PhantomMSHR) fire
// exactly once.
func (i *Injector) Tick(c Class) bool {
	if i == nil || i.plan.Class != c {
		return false
	}
	i.seen++
	trigger := i.plan.trigger()
	switch c {
	case DropCompletion, RefreshStorm:
		if i.seen >= trigger {
			i.fired++
			return true
		}
	case DuplicateFill, StuckBank, PhantomMSHR:
		if i.seen == trigger {
			i.fired++
			return true
		}
	}
	return false
}
