package inject

import "testing"

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want Plan
		bad  bool
	}{
		{spec: "", want: Plan{}},
		{spec: "none", want: Plan{}},
		{spec: "drop-completion", want: Plan{Class: DropCompletion}},
		{spec: "drop-completion:10", want: Plan{Class: DropCompletion, After: 10}},
		{spec: "stuck-bank:3", want: Plan{Class: StuckBank, After: 3}},
		{spec: "refresh-storm", want: Plan{Class: RefreshStorm}},
		{spec: "duplicate-fill:2", want: Plan{Class: DuplicateFill, After: 2}},
		{spec: "phantom-mshr", want: Plan{Class: PhantomMSHR}},
		{spec: "meteor-strike", bad: true},
		{spec: "drop-completion:0", bad: true},
		{spec: "drop-completion:x", bad: true},
	} {
		got, err := Parse(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("Parse(%q) accepted", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestRoundTripStrings(t *testing.T) {
	for _, c := range Classes() {
		p, err := Parse(c.String())
		if err != nil {
			t.Errorf("class %v does not round-trip: %v", c, err)
		}
		if p.Class != c {
			t.Errorf("Parse(%q).Class = %v", c.String(), p.Class)
		}
	}
}

func TestOneShotFiresOnce(t *testing.T) {
	i := New(Plan{Class: StuckBank, After: 3})
	var fires []int
	for n := 1; n <= 6; n++ {
		if i.Tick(StuckBank) {
			fires = append(fires, n)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("stuck-bank fired at %v, want [3]", fires)
	}
	if i.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", i.Fired())
	}
}

func TestSustainedFiresFromTrigger(t *testing.T) {
	i := New(Plan{Class: DropCompletion, After: 2})
	var fires []int
	for n := 1; n <= 5; n++ {
		if i.Tick(DropCompletion) {
			fires = append(fires, n)
		}
	}
	if len(fires) != 4 || fires[0] != 2 {
		t.Fatalf("drop-completion fired at %v, want [2 3 4 5]", fires)
	}
}

func TestTickIgnoresOtherClasses(t *testing.T) {
	i := New(Plan{Class: DuplicateFill, After: 1})
	if i.Tick(DropCompletion) || i.Tick(StuckBank) {
		t.Fatal("foreign class tick fired")
	}
	if !i.Tick(DuplicateFill) {
		t.Fatal("matching class tick did not fire: foreign ticks consumed the count")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Tick(DropCompletion) {
		t.Fatal("nil injector fired")
	}
}

func TestDefaultTriggerIsFirst(t *testing.T) {
	i := New(Plan{Class: PhantomMSHR})
	if !i.Tick(PhantomMSHR) {
		t.Fatal("After=0 plan did not fire on first opportunity")
	}
}
