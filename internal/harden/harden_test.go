package harden

import (
	"errors"
	"strings"
	"testing"
)

func TestValidatorAggregates(t *testing.T) {
	var v Validator
	v.Pow2("Block", 48)
	v.Range("MSHRs", 0, 1, 1024)
	v.Check(false, "Mapping", "diag", "unknown mapping")
	v.Check(true, "OK", 1, "never recorded")

	err := v.Err()
	if err == nil {
		t.Fatal("Err() = nil with three violations")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *ConfigError", err)
	}
	if len(ce.Fields) != 3 {
		t.Fatalf("got %d field errors, want 3", len(ce.Fields))
	}
	msg := err.Error()
	for _, want := range []string{"3 problems", "Block", "MSHRs", "Mapping"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
}

func TestValidatorClean(t *testing.T) {
	var v Validator
	v.Pow2("Block", 64)
	v.Range("MSHRs", 8, 1, 1024)
	if err := v.Err(); err != nil {
		t.Fatalf("clean pass returned %v", err)
	}
}

func TestValidatorMerge(t *testing.T) {
	var inner Validator
	inner.Pow2("BlockBytes", 3)
	var outer Validator
	outer.Merge("Prefetch", inner.Err())
	outer.Merge("L1", errors.New("size not divisible"))
	outer.Merge("L2", nil)

	err := outer.Err()
	if err == nil {
		t.Fatal("merged violations lost")
	}
	ce := err.(*ConfigError)
	if len(ce.Fields) != 2 {
		t.Fatalf("got %d field errors, want 2", len(ce.Fields))
	}
	if ce.Fields[0].Field != "Prefetch.BlockBytes" {
		t.Errorf("merged field %q, want Prefetch.BlockBytes", ce.Fields[0].Field)
	}
}

func TestFieldErrorViaErrorsAs(t *testing.T) {
	var v Validator
	v.Reject("X", 1, "bad")
	var fe *FieldError
	if !errors.As(v.Err(), &fe) {
		t.Fatal("errors.As failed to find *FieldError through ConfigError.Unwrap")
	}
	if fe.Field != "X" {
		t.Errorf("field %q, want X", fe.Field)
	}
}

func TestWatchdogObserve(t *testing.T) {
	w := NewWatchdog()
	p := Progress{Retired: 10, Issued: 5, Completions: 3}
	if !w.Observe(p) {
		t.Fatal("first observation must prime, not trip")
	}
	if w.Observe(p) {
		t.Fatal("identical snapshot reported as progress")
	}
	p.Completions++
	if !w.Observe(p) {
		t.Fatal("completion increment not counted as progress")
	}
	if w.Observe(p) {
		t.Fatal("stagnant snapshot after progress reported as progress")
	}
}

func TestReportFormat(t *testing.T) {
	var r Report
	r.Section("cpu")
	r.Linef("count=%d", 3)
	r.Section("mshrs")
	r.Linef("empty")
	got := r.String()
	for _, want := range []string{"=== cpu ===", "count=3", "=== mshrs ===", "empty"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}
