package memsim_test

import (
	"fmt"

	"memsim"
)

// The simplest complete run: a few memory operations through the base
// system. Deterministic, so the output is exact.
func ExampleRun() {
	ops := []memsim.Op{
		{NonMem: 9, Addr: 0x10000, Kind: memsim.Load},
		{NonMem: 9, Addr: 0x10040, Kind: memsim.Load},
		{NonMem: 9, Addr: 0x10000, Kind: memsim.Store},
	}
	cfg := memsim.BaseConfig()
	cfg.MaxInstrs = 0 // run the trace out
	res, err := memsim.Run(cfg, memsim.Trace(ops))
	if err != nil {
		panic(err)
	}
	// The store issues while the first load's fill is still in
	// flight, so it counts as a third (merged) miss.
	fmt.Printf("retired %d instructions, %d L2 misses\n", res.Instrs, res.L2.Misses)
	// Output: retired 30 instructions, 3 L2 misses
}

// Comparing the base and tuned systems on one benchmark is the
// package's one-line story.
func ExampleRunBenchmark() {
	cfg := memsim.TunedConfig()
	cfg.MaxInstrs = 20_000
	res, err := memsim.RunBenchmark(cfg, "swim")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.IPC > 0 && res.IPC <= 4)
	// Output: true
}

// A custom workload characterizes an application not in the suite.
func ExampleCustomWorkload() {
	params := memsim.WorkloadParams{
		WorkingSet:    8 << 20,
		ResidentBytes: 128 << 10,
		MemFraction:   0.1,
		StreamWeight:  0.8,
		Streams:       2,
		ElemBytes:     8,
		Coverage:      1.0,
	}
	gen, err := memsim.CustomWorkload(params, 42, false)
	if err != nil {
		panic(err)
	}
	cfg := memsim.BaseConfig()
	cfg.MaxInstrs = 10_000
	res, err := memsim.Run(cfg, gen)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instrs >= 9_000)
	// Output: true
}
