package memsim

import (
	"bytes"

	"testing"
	"testing/quick"
)

func TestPublicQuickRun(t *testing.T) {
	cfg := BaseConfig()
	cfg.MaxInstrs = 30_000
	cfg.WarmupInstrs = 30_000
	res, err := RunBenchmark(cfg, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Fatalf("IPC = %v", res.IPC)
	}
}

func TestTunedConfigPrefetches(t *testing.T) {
	cfg := TunedConfig()
	cfg.MaxInstrs = 60_000
	cfg.WarmupInstrs = 60_000
	res, err := RunBenchmark(cfg, "swim")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetch.Issued == 0 {
		t.Fatal("tuned config issued no prefetches")
	}
}

func TestBenchmarkSuite(t *testing.T) {
	if len(Benchmarks()) != 26 {
		t.Fatalf("suite = %d benchmarks", len(Benchmarks()))
	}
	if len(Profiles()) != 26 {
		t.Fatalf("profiles = %d", len(Profiles()))
	}
	if _, err := Workload("nope", 0, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTraceGenerator(t *testing.T) {
	ops := []Op{
		{NonMem: 10, Addr: 0x1000, Kind: Load},
		{NonMem: 10, Addr: 0x2000, Kind: Store},
		{NonMem: 10, Addr: 0x1000, Kind: Load},
	}
	cfg := BaseConfig()
	cfg.MaxInstrs = 0 // run the trace out
	res, err := Run(cfg, Trace(ops))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != 33 {
		t.Fatalf("retired %d instructions, want 33", res.Instrs)
	}
}

func TestCustomWorkload(t *testing.T) {
	params := WorkloadParams{
		WorkingSet: 4 << 20, ResidentBytes: 64 << 10,
		MemFraction: 0.2, StreamWeight: 1.0, Streams: 2, ElemBytes: 8, Coverage: 1.0,
	}
	gen, err := CustomWorkload(params, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BaseConfig()
	cfg.MaxInstrs = 20_000
	res, err := Run(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if res.L2.Misses == 0 {
		t.Fatal("streaming custom workload produced no misses")
	}
}

// Property: any valid trace of bounded length runs to completion and
// retires exactly the trace's instruction count.
func TestPropertyTraceConservation(t *testing.T) {
	f := func(raw []uint32) bool {
		var ops []Op
		var want uint64
		for _, r := range raw {
			op := Op{
				NonMem: int(r % 8),
				Addr:   uint64(r) * 64,
			}
			switch r % 3 {
			case 0:
				op.Kind = Load
			case 1:
				op.Kind = Store
			default:
				op.Kind = SWPrefetch
			}
			op.DependsOnPrev = r%5 == 0
			ops = append(ops, op)
			want += op.Instructions()
		}
		cfg := BaseConfig()
		res, err := Run(cfg, Trace(ops))
		if err != nil {
			return false
		}
		return res.Instrs == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTraceFileRoundTripPublic(t *testing.T) {
	gen, err := Workload("gcc", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteTraceFile(&buf, gen, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("wrote %d, err %v", n, err)
	}
	replay, err := ReadTraceFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BaseConfig()
	cfg.MaxInstrs = 0
	res, err := Run(cfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs == 0 {
		t.Fatal("replayed trace retired nothing")
	}
}
